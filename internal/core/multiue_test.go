package core

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/gnb"
)

// The fleet contract extends to the multi-UE arm: reports must be
// byte-identical no matter how many workers ran them, because every cell
// seed splits from the base seed by the operator acronym alone.
func TestRunMultiUEParallelDeterminism(t *testing.T) {
	run := func(workers int) []MultiUEReport {
		reports, err := RunMultiUE(MultiUEConfig{
			Operators:  campaignOps(t, "V_Sp", "Tmb_US", "V_It"),
			UEsPerCell: 4,
			Policy:     gnb.SchedulerProportionalFair,
			Duration:   500 * time.Millisecond,
			Seed:       42,
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return reports
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("multi-UE reports diverge between workers=1 and workers=8:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

// -ues-per-cell 1 must be indistinguishable from a campaign built before
// the multi-UE arm existed: same stats, same traces.
func TestCampaignUEsPerCellOneIsLegacy(t *testing.T) {
	run := func(uesPerCell int) *CampaignStats {
		stats, err := RunCampaign(CampaignConfig{
			Operators:       campaignOps(t, "V_Sp", "V_It"),
			SessionDuration: 500 * time.Millisecond,
			TraceDir:        t.TempDir(),
			Seed:            42,
			UEsPerCell:      uesPerCell,
			CellPolicy:      gnb.SchedulerProportionalFair,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range stats.Sessions {
			stats.Sessions[i].TracePath = filepath.Base(stats.Sessions[i].TracePath)
		}
		return stats
	}
	legacy, one := run(0), run(1)
	if len(one.MultiUE) != 0 {
		t.Errorf("-ues-per-cell 1 grew a multi-UE arm: %+v", one.MultiUE)
	}
	if !reflect.DeepEqual(legacy, one) {
		t.Errorf("UEsPerCell=1 diverges from the legacy campaign:\nlegacy: %+v\none:    %+v", legacy, one)
	}
}

func TestCampaignMultiUEArm(t *testing.T) {
	ops := campaignOps(t, "V_Sp", "Tmb_US")
	stats, err := RunCampaign(CampaignConfig{
		Operators:       ops,
		SessionDuration: 500 * time.Millisecond,
		TraceDir:        t.TempDir(),
		Seed:            42,
		UEsPerCell:      4,
		CellPolicy:      gnb.SchedulerProportionalFair,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.MultiUE) != len(ops) {
		t.Fatalf("got %d multi-UE reports, want %d", len(stats.MultiUE), len(ops))
	}
	for _, rep := range stats.MultiUE {
		if rep.UEs != 4 || len(rep.PerUE) != 4 {
			t.Fatalf("%s: %d UEs (%d shares), want 4", rep.Operator, rep.UEs, len(rep.PerUE))
		}
		if rep.CellMbps <= 0 {
			t.Errorf("%s: cell goodput %.1f Mbps, want > 0", rep.Operator, rep.CellMbps)
		}
		if rep.JainIndex < 0.25 || rep.JainIndex > 1 {
			t.Errorf("%s: Jain index %.3f outside [1/N, 1]", rep.Operator, rep.JainIndex)
		}
		var sum float64
		for _, u := range rep.PerUE {
			sum += u.Share
			if u.ScheduledSlots == 0 {
				t.Errorf("%s: UE %d never scheduled under PF", rep.Operator, u.UE)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: shares sum to %.6f, want 1", rep.Operator, sum)
		}
	}
}

// UE i's position must not depend on the population size, so growing a
// cell never moves the UEs already in it.
func TestUEPositionsStable(t *testing.T) {
	small, big := UEPositions(7, 3), UEPositions(7, 8)
	if !reflect.DeepEqual(small, big[:3]) {
		t.Errorf("positions moved when the population grew: %v vs %v", small, big[:3])
	}
	for i, p := range big {
		d := math.Hypot(p.X, p.Y)
		if d < 30 || d > 150 {
			t.Errorf("UE %d at distance %.1f m, want within [30, 150]", i, d)
		}
	}
}
