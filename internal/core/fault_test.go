package core

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/fault"
)

func mustFaults(t *testing.T, cfg fault.Config) *fault.Schedule {
	t.Helper()
	s, err := fault.NewSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// With every session aborting, the campaign must still complete — nil
// error, full provenance — and aborted primaries must leave no partial
// trace behind.
func TestRunCampaignGracefulOnAbort(t *testing.T) {
	dir := t.TempDir()
	stats, err := RunCampaign(CampaignConfig{
		Operators:           campaignOps(t, "V_Sp", "Tmb_US"),
		SessionDuration:     300 * time.Millisecond,
		SessionsPerOperator: 2,
		LatencyProbes:       50,
		TraceDir:            dir,
		Seed:                42,
		Faults:              mustFaults(t, fault.Config{SessionAbortProb: 1, Seed: 5}),
	})
	if err != nil {
		t.Fatalf("campaign must degrade gracefully, got error: %v", err)
	}
	if len(stats.Failures) != 4 {
		t.Fatalf("%d failures recorded, want all 4 sessions", len(stats.Failures))
	}
	for _, f := range stats.Failures {
		if f.Stage != "abort" {
			t.Errorf("%s: stage %q, want \"abort\"", f.Key, f.Stage)
		}
		if f.Attempts != 1 {
			t.Errorf("%s: %d attempts — aborts are permanent and must not retry", f.Key, f.Attempts)
		}
	}
	for _, rep := range stats.Sessions {
		if rep.Sessions != 0 || rep.DLMbps != 0 || rep.TracePath != "" {
			t.Errorf("%s: report carries data from aborted sessions: %+v", rep.Operator, rep)
		}
	}
	if stats.TraceFiles != 0 {
		t.Errorf("TraceFiles = %d, want 0", stats.TraceFiles)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range entries {
		t.Errorf("partial trace left behind by aborted session: %s", e.Name())
	}
}

// Injected trace write errors fail only the trace-writing primary
// sessions; secondaries survive, the report averages over them, and the
// broken captures are cleaned up. Trace I/O is transient, so the
// failures must show the full retry budget.
func TestRunCampaignTraceErrorCleanup(t *testing.T) {
	dir := t.TempDir()
	stats, err := RunCampaign(CampaignConfig{
		Operators:           campaignOps(t, "V_Sp", "V_It"),
		SessionDuration:     300 * time.Millisecond,
		SessionsPerOperator: 2,
		LatencyProbes:       50,
		TraceDir:            dir,
		Seed:                42,
		Faults:              mustFaults(t, fault.Config{TraceErrorPerWrite: 1, MaxAttempts: 3, Seed: 5}),
	})
	if err != nil {
		t.Fatalf("campaign must degrade gracefully, got error: %v", err)
	}
	if len(stats.Failures) != 2 {
		t.Fatalf("%d failures, want the 2 trace-writing primaries", len(stats.Failures))
	}
	for _, f := range stats.Failures {
		if f.Session != 0 {
			t.Errorf("%s: session %d failed, but only primaries write traces", f.Key, f.Session)
		}
		if f.Stage != "trace-io" {
			t.Errorf("%s: stage %q, want \"trace-io\"", f.Key, f.Stage)
		}
		if f.Attempts != 3 {
			t.Errorf("%s: %d attempts, want the full retry budget of 3", f.Key, f.Attempts)
		}
	}
	for _, rep := range stats.Sessions {
		if rep.Sessions != 1 {
			t.Errorf("%s: %d surviving sessions, want the 1 traceless secondary", rep.Operator, rep.Sessions)
		}
		if rep.DLMbps <= 0 {
			t.Errorf("%s: no throughput from the surviving secondary", rep.Operator)
		}
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range entries {
		t.Errorf("partial trace left behind under injected write errors: %s", e.Name())
	}
	if stats.BackoffSim == 0 {
		t.Error("retries happened but no simulated backoff accumulated")
	}
}

// Injected worker panics are recovered per attempt, retried to the
// budget, and reported with the job key in the provenance — never torn
// through the campaign.
func TestRunCampaignPanicProvenance(t *testing.T) {
	stats, err := RunCampaign(CampaignConfig{
		Operators:           campaignOps(t, "V_Sp"),
		SessionDuration:     200 * time.Millisecond,
		SessionsPerOperator: 1,
		LatencyProbes:       50,
		Seed:                42,
		Faults:              mustFaults(t, fault.Config{WorkerPanicProb: 1, MaxAttempts: 2, Seed: 5}),
	})
	if err != nil {
		t.Fatalf("campaign must recover injected panics, got error: %v", err)
	}
	if len(stats.Failures) != 1 {
		t.Fatalf("%d failures, want 1", len(stats.Failures))
	}
	f := stats.Failures[0]
	if f.Stage != "panic" || f.Attempts != 2 {
		t.Fatalf("failure (stage=%q attempts=%d), want panic after 2 attempts", f.Stage, f.Attempts)
	}
	if f.Key != "V_Sp/0" || !strings.Contains(f.Err, "V_Sp") {
		t.Fatalf("panic provenance lost the job key: key=%q err=%q", f.Key, f.Err)
	}
}

// The acceptance bar for fault injection: a faulty campaign — aborts,
// panics, retries, blackouts and all — aggregates byte-identically for
// any worker count, because fault plans derive from (key, attempt) and
// retries run inline on the owning worker.
func TestRunCampaignFaultyParallelDeterminism(t *testing.T) {
	faultCfg := fault.Config{
		RLFProbPerSlot:      2e-4,
		BlackoutProbPerSlot: 2e-4,
		SessionAbortProb:    0.3,
		WorkerPanicProb:     0.3,
		MaxAttempts:         3,
		Seed:                17,
	}
	run := func(workers int) *CampaignStats {
		stats, err := RunCampaign(CampaignConfig{
			Operators:           campaignOps(t, "V_Sp", "Tmb_US", "V_It"),
			SessionDuration:     300 * time.Millisecond,
			SessionsPerOperator: 2,
			LatencyProbes:       100,
			Seed:                42,
			Workers:             workers,
			Faults:              mustFaults(t, faultCfg),
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	serial := run(1)
	parallel := run(8)
	if len(serial.Failures) == 0 {
		t.Fatal("fault mix injected no failures — the determinism check is vacuous")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("faulty campaign diverges between workers=1 and workers=8:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// External cancellation is not an injected fault: even in graceful
// degradation mode the campaign must stop and report it as an error.
func TestRunCampaignCancelledMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunCampaignContext(ctx, CampaignConfig{
		Operators:           campaignOps(t, "V_Sp", "Tmb_US", "V_It"),
		SessionDuration:     200 * time.Millisecond,
		SessionsPerOperator: 2,
		LatencyProbes:       50,
		Seed:                42,
		Workers:             1,
		Faults:              mustFaults(t, fault.Config{SessionAbortProb: 0.1, Seed: 5}),
		Progress: func(done, total int, key string) {
			if done == 1 {
				cancel() // first session finished: kill the rest mid-campaign
			}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("cancelled campaign returned %v, want a cancellation error", err)
	}

	// Without faults the legacy fail-fast path surfaces it too.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	_, err = RunCampaignContext(ctx2, CampaignConfig{
		Operators:           campaignOps(t, "V_Sp"),
		SessionDuration:     200 * time.Millisecond,
		SessionsPerOperator: 1,
		LatencyProbes:       50,
		Seed:                42,
	})
	if err == nil {
		t.Fatal("pre-cancelled fault-free campaign returned nil error")
	}
}

// A partial trace directory must never confuse the trace-bytes cleanup:
// sessions that survive injected RLF/blackout faults still produce
// valid, parseable traces.
func TestRunCampaignFaultyTracesRemainValid(t *testing.T) {
	dir := t.TempDir()
	stats, err := RunCampaign(CampaignConfig{
		Operators:           campaignOps(t, "V_Sp"),
		SessionDuration:     300 * time.Millisecond,
		SessionsPerOperator: 1,
		LatencyProbes:       50,
		TraceDir:            dir,
		Seed:                42,
		Faults: mustFaults(t, fault.Config{
			RLFProbPerSlot:      1e-3,
			BlackoutProbPerSlot: 1e-3,
			Seed:                5,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Failures) != 0 {
		t.Fatalf("radio faults alone should not fail sessions: %+v", stats.Failures)
	}
	if stats.TraceFiles != 1 {
		t.Fatalf("TraceFiles = %d, want 1", stats.TraceFiles)
	}
	path := stats.Sessions[0].TracePath
	if filepath.Dir(path) != dir {
		t.Fatalf("trace %q not under %q", path, dir)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace missing or empty: %v", err)
	}
}
