package core

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/xcal"
	"github.com/midband5g/midband/internal/xcol"
)

// TestCampaignXcolTraces runs a campaign in the columnar trace format
// and checks the captures are complete: readable through the indexed
// scanner, KPI records present, signaling aux frames replayable, and
// per-slot content identical to what the same campaign writes in the
// row format.
func TestCampaignXcolTraces(t *testing.T) {
	op, err := operators.ByAcronym("V_Sp")
	if err != nil {
		t.Fatal(err)
	}
	base := CampaignConfig{
		Operators:           []operators.Operator{op},
		SessionDuration:     time.Second,
		SessionsPerOperator: 1,
		LatencyProbes:       100,
		Seed:                5,
	}

	colCfg := base
	colCfg.TraceDir = t.TempDir()
	colCfg.TraceFormat = "xcol"
	colStats, err := RunCampaign(colCfg)
	if err != nil {
		t.Fatal(err)
	}
	rowCfg := base
	rowCfg.TraceDir = t.TempDir()
	rowStats, err := RunCampaign(rowCfg)
	if err != nil {
		t.Fatal(err)
	}

	colPath := colStats.Sessions[0].TracePath
	if !strings.HasSuffix(colPath, ".xcol") {
		t.Fatalf("columnar campaign wrote %q, want .xcol extension", colPath)
	}
	if format, err := xcol.DetectFormat(colPath); err != nil || format != "xcol" {
		t.Fatalf("DetectFormat(%s) = %q, %v", filepath.Base(colPath), format, err)
	}

	s, f, err := xcol.OpenFile(colPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if s.Sequential() {
		t.Fatal("campaign trace has no usable index — Close did not finalize the footer")
	}
	if s.Meta().Operator != "V_Sp" {
		t.Fatalf("meta operator %q", s.Meta().Operator)
	}
	var colKPIs []xcal.SlotKPI
	for {
		blk, err := s.Next()
		if err != nil {
			break
		}
		colKPIs = blk.AppendRows(colKPIs)
	}
	if len(s.Corrupt()) != 0 {
		t.Fatalf("campaign trace has corrupt blocks: %v", s.Corrupt())
	}
	var sibs int
	err = s.AuxFrames(func(ft xcal.FrameType, pos uint64, payload []byte) error {
		if ft == xcal.FrameSIB1 {
			sibs++
		}
		return nil
	})
	if err != nil || sibs == 0 {
		t.Fatalf("aux replay: sibs=%d err=%v", sibs, err)
	}

	// The same seed in the row container must capture identical slots.
	r, rf, err := xcal.OpenFile(rowStats.Sessions[0].TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	var rowKPIs []xcal.SlotKPI
	for {
		ft, err := r.Next()
		if err != nil {
			break
		}
		if ft == xcal.FrameKPI {
			rowKPIs = append(rowKPIs, r.KPI)
		}
	}
	if len(colKPIs) == 0 || len(colKPIs) != len(rowKPIs) {
		t.Fatalf("columnar campaign captured %d KPIs, row campaign %d", len(colKPIs), len(rowKPIs))
	}
	for i := range colKPIs {
		if colKPIs[i] != rowKPIs[i] {
			t.Fatalf("record %d diverges between containers: %+v vs %+v", i, colKPIs[i], rowKPIs[i])
		}
	}

	// The aggregate stats must not depend on the container at all.
	if colStats.Sessions[0].DLMbps != rowStats.Sessions[0].DLMbps {
		t.Fatalf("DLMbps differs by trace format: %v vs %v",
			colStats.Sessions[0].DLMbps, rowStats.Sessions[0].DLMbps)
	}
}
