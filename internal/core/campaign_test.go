package core

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/operators"
)

func campaignOps(t *testing.T, acrs ...string) []operators.Operator {
	t.Helper()
	var ops []operators.Operator
	for _, acr := range acrs {
		op, err := operators.ByAcronym(acr)
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op)
	}
	return ops
}

// Regression for the trace-file leak: when the bulk transfer fails after
// xcal.CreateFile succeeded, the file must be closed and the partial
// .xcal removed — no half-written captures and no leaked descriptors.
func TestRunCampaignClosesTraceOnError(t *testing.T) {
	dir := t.TempDir()
	before := openFDs(t)
	// A negative duration passes the config default (only 0 is
	// defaulted) and fails inside iperf.Run — after the trace file and
	// its header were already written.
	_, err := RunCampaign(CampaignConfig{
		Operators:           campaignOps(t, "V_Sp"),
		SessionDuration:     -time.Second,
		SessionsPerOperator: 1,
		LatencyProbes:       10,
		TraceDir:            dir,
		Seed:                1,
	})
	if err == nil {
		t.Fatal("campaign with negative duration should fail")
	}
	if !strings.Contains(err.Error(), "duration") {
		t.Errorf("unexpected error: %v", err)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range entries {
		t.Errorf("partial trace left behind: %s", e.Name())
	}
	if after := openFDs(t); before >= 0 && after > before {
		t.Errorf("file descriptors leaked: %d -> %d", before, after)
	}
}

// openFDs counts this process's open descriptors (-1 when the platform
// doesn't expose them).
func openFDs(t *testing.T) int {
	t.Helper()
	if runtime.GOOS != "linux" {
		return -1
	}
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// The fleet contract: a campaign must produce byte-identical aggregates
// and traces no matter how many workers ran it, because every session
// seed is split from the base seed by the job key alone.
func TestRunCampaignParallelDeterminism(t *testing.T) {
	ops := []string{"V_Sp", "Tmb_US", "V_It"}
	run := func(workers int) (*CampaignStats, string) {
		dir := t.TempDir()
		stats, err := RunCampaign(CampaignConfig{
			Operators:           campaignOps(t, ops...),
			SessionDuration:     500 * time.Millisecond,
			SessionsPerOperator: 2,
			LatencyProbes:       200,
			TraceDir:            dir,
			Seed:                42,
			Workers:             workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats, dir
	}
	serial, dir1 := run(1)
	parallel, dir8 := run(8)

	// Sessions arrive in deterministic operator order on both runs.
	for i := range serial.Sessions {
		if serial.Sessions[i].Operator != ops[i] || parallel.Sessions[i].Operator != ops[i] {
			t.Fatalf("session order: serial[%d]=%s parallel[%d]=%s want %s",
				i, serial.Sessions[i].Operator, i, parallel.Sessions[i].Operator, ops[i])
		}
	}
	// Trace paths differ by temp dir; normalize before comparing.
	for i := range serial.Sessions {
		serial.Sessions[i].TracePath = filepath.Base(serial.Sessions[i].TracePath)
		parallel.Sessions[i].TracePath = filepath.Base(parallel.Sessions[i].TracePath)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("stats diverge between workers=1 and workers=8:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	// The traces themselves must be byte-identical too.
	for _, s := range serial.Sessions {
		b1, err := os.ReadFile(filepath.Join(dir1, s.TracePath))
		if err != nil {
			t.Fatal(err)
		}
		b8, err := os.ReadFile(filepath.Join(dir8, s.TracePath))
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b8) {
			t.Errorf("trace %s differs between workers=1 and workers=8", s.TracePath)
		}
	}
}
