// Package core orchestrates measurement campaigns: it reproduces the
// paper's methodology (§2) — per-operator experiment sessions with RRC
// warm-up, control-plane signaling capture, bulk-transfer and latency
// workloads — and produces the xcal traces and dataset statistics (Table 1)
// that all downstream analysis consumes.
package core

import (
	"fmt"
	"time"

	"github.com/midband5g/midband/internal/fault"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/iperf"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/ue"
	"github.com/midband5g/midband/internal/video"
	"github.com/midband5g/midband/internal/xcal"
)

// Session is one measurement session: an operator, a scenario and a live
// link.
type Session struct {
	Operator operators.Operator
	Scenario operators.Scenario
	Link     *net5g.Link
	rrc      *ue.RRC
	warmedUp bool
}

// NewSession builds the link for an operator and scenario.
func NewSession(op operators.Operator, sc operators.Scenario) (*Session, error) {
	return NewSessionWithFaults(op, sc, nil)
}

// NewSessionWithFaults is NewSession with a fault plan threaded into
// every component carrier: radio-link failures into the gnb scheduler
// and SINR blackout windows into each carrier's channel. A nil plan
// builds exactly the session NewSession builds — no component draws a
// single extra random number, so the fault path is strictly opt-in.
func NewSessionWithFaults(op operators.Operator, sc operators.Scenario, fs *fault.Session) (*Session, error) {
	cfg, err := op.LinkConfig(sc)
	if err != nil {
		return nil, err
	}
	if fs != nil {
		for i := range cfg.Carriers {
			cfg.Carriers[i].Fault = fs.RLF(i)
			cfg.Carriers[i].Channel.Fault = fs.Blackout(i)
		}
	}
	link, err := net5g.NewLink(cfg)
	if err != nil {
		return nil, err
	}
	rrc, err := ue.NewRRC(ue.DefaultRRC)
	if err != nil {
		return nil, err
	}
	return &Session{Operator: op, Scenario: sc, Link: link, rrc: rrc}, nil
}

// Meta describes the session for trace headers.
func (s *Session) Meta() xcal.Meta {
	return xcal.Meta{
		Operator:     s.Operator.Acronym,
		Country:      s.Operator.Country,
		City:         s.Operator.City,
		CarrierLabel: s.Operator.PCell().Label(),
		Scenario:     s.Scenario.Name,
		SlotDuration: s.Link.SlotDuration(),
		Start:        time.Unix(0, 0).UTC(), // simulated epoch
	}
}

// Signaling synthesizes the control-plane messages a UE captures during
// initial access: one MIB plus one SIB1 per component carrier, built from
// the operator profile exactly as a gNB would broadcast them.
func (s *Session) Signaling() (xcal.MIB, []xcal.SIB1, error) {
	pc := s.Operator.PCell()
	mib := xcal.MIB{
		SFN:                    0,
		SCSkHz:                 uint16(pc.SCSkHz),
		ControlResourceSetZero: 1,
		SearchSpaceZero:        0,
	}
	var sibs []xcal.SIB1
	for i, c := range s.Operator.Carriers {
		nrb, err := c.NRB()
		if err != nil {
			return mib, nil, fmt.Errorf("core: carrier %d: %w", i, err)
		}
		arfcn, err := freqToARFCN(c)
		if err != nil {
			return mib, nil, err
		}
		sibs = append(sibs, xcal.SIB1{
			CellID:                  uint32(100 + i),
			Band:                    c.Band.Name,
			AbsoluteFrequencyPointA: arfcn,
			OffsetToCarrier:         0,
			CarrierBandwidthRB:      uint16(nrb),
			SCSkHz:                  uint16(c.SCSkHz),
			FDD:                     c.TDDPattern == "",
			TDDPattern:              c.TDDPattern,
			MaxMIMOLayers:           uint8(c.MaxMIMOLayers),
			MCSTable:                uint8(c.MCSTable),
		})
	}
	return mib, sibs, nil
}

// WarmUp reproduces methodology step ❺: drive some traffic so the RRC
// connection is established and the CSI loop primed, then leave a short
// idle gap, so measurements never include the idle→connected promotion.
func (s *Session) WarmUp() error {
	if s.warmedUp {
		return nil
	}
	s.rrc.Touch(s.Link.Now())
	// 20 "seconds" of video in the paper; 1 simulated second of traffic
	// is ample to settle CSI and OLLA here. The warm-up result is
	// discarded and never traced, so the per-slot RSRQ conversion is
	// skipped for its duration (no RNG stream is touched; the measurement
	// run below re-enables it as needed).
	s.Link.SetRSRQNeeded(false)
	if _, err := iperf.Run(s.Link, iperf.Config{Duration: time.Second, Discard: true}); err != nil {
		return fmt.Errorf("core: warm-up: %w", err)
	}
	s.rrc.Tick(s.Link.Now())
	if s.rrc.State() != ue.RRCConnected {
		return fmt.Errorf("core: warm-up left RRC %v", s.rrc.State())
	}
	s.warmedUp = true
	return nil
}

// RunIperf runs a bulk-transfer measurement after warm-up. When w is
// non-nil, the session writes the full capture: signaling first, then
// per-slot KPI records, plus periodic DCI frames for config extraction.
// The session is container-agnostic: w may be a row xcal.Writer or a
// columnar xcol.Writer. Pass a nil interface (not a typed nil) to skip
// capture.
func (s *Session) RunIperf(d time.Duration, demand net5g.Demand, w xcal.TraceWriter) (*iperf.Result, error) {
	if err := s.WarmUp(); err != nil {
		return nil, err
	}
	// RSRQ reaches an artifact only through the capture's KPI records
	// (campaign aggregates and the figure pipelines read goodput/SINR/MCS
	// series, never Result.RSRQdB), so untraced runs skip the per-slot
	// conversion. The hint draws no randomness: every SINR sample, CQI
	// report and scheduling decision is bit-identical either way.
	s.Link.SetRSRQNeeded(w != nil)
	if w != nil {
		mib, sibs, err := s.Signaling()
		if err != nil {
			return nil, err
		}
		if err := w.WriteMIB(&mib); err != nil {
			return nil, err
		}
		for i := range sibs {
			if err := w.WriteSIB1(&sibs[i]); err != nil {
				return nil, err
			}
		}
	}
	cfg := iperf.Config{Duration: d, Demand: demand, Trace: w}
	if w != nil {
		cfg.KeepRecords = true
	}
	res, err := iperf.Run(s.Link, cfg)
	if err != nil {
		return nil, err
	}
	if w != nil {
		if err := writeDCISamples(w, res.Records); err != nil {
			return nil, err
		}
		res.Records = nil // retained only for DCI synthesis
	}
	return res, nil
}

// writeDCISamples emits one DCI frame per captured DL allocation record,
// subsampled to keep traces compact.
func writeDCISamples(w xcal.TraceWriter, recs []xcal.SlotKPI) error {
	const every = 16
	n := 0
	for i := range recs {
		r := &recs[i]
		if r.Dir != xcal.DL || r.RAT != xcal.NR || r.TBSBits == 0 {
			continue
		}
		n++
		if n%every != 0 {
			continue
		}
		format := xcal.DCI10
		if r.MCSTable == 2 {
			format = xcal.DCI11
		}
		dci := xcal.DCI{
			Slot:    r.Slot,
			Format:  format,
			Carrier: r.Carrier,
			MCS:     r.MCS,
			RBs:     r.RBs,
			Rank:    r.Rank,
			NDI:     r.HARQRetx == 0,
		}
		if err := w.WriteDCI(&dci); err != nil {
			return err
		}
	}
	return nil
}

// RunLatency draws user-plane latency probes using the operator's §4.3
// profile, with per-leg BLER taken from the given first-transmission error
// rate.
func (s *Session) RunLatency(n int, bler float64) (clean, retx []time.Duration, err error) {
	cfg, err := s.Operator.LatencyConfig(bler, bler, fleet.SplitSeed(s.Scenario.Seed, "latency", 0))
	if err != nil {
		return nil, nil, err
	}
	model, err := net5g.NewLatencyModel(cfg)
	if err != nil {
		return nil, nil, err
	}
	clean, retx = model.Samples(n)
	return clean, retx, nil
}

// RunVideo streams a DASH session after warm-up. When w is non-nil the
// session writes the full cross-layer capture the §6 analysis needs:
// signaling, per-slot KPI records from a parallel probe of the same channel
// realization, and application events annotating every chunk decision and
// stall — the material for cross-correlating PHY KPIs with ABR decisions.
func (s *Session) RunVideo(cfg video.SessionConfig, w xcal.TraceWriter) (*video.Result, error) {
	if err := s.WarmUp(); err != nil {
		return nil, err
	}
	if w != nil {
		mib, sibs, err := s.Signaling()
		if err != nil {
			return nil, err
		}
		if err := w.WriteMIB(&mib); err != nil {
			return nil, err
		}
		for i := range sibs {
			if err := w.WriteSIB1(&sibs[i]); err != nil {
				return nil, err
			}
		}
	}
	res, err := video.Play(s.Link, cfg)
	if err != nil {
		return nil, err
	}
	if w != nil {
		for _, c := range res.Chunks {
			if err := w.WriteEvent(xcal.Event{
				Time: c.RequestTime,
				Kind: "chunk-request",
				Data: fmt.Sprintf("index=%d quality=%d buffer=%.1fs", c.Index, c.Quality, c.BufferAtDecision),
			}); err != nil {
				return nil, err
			}
			if err := w.WriteEvent(xcal.Event{
				Time: c.ArriveTime,
				Kind: "chunk-arrival",
				Data: fmt.Sprintf("index=%d tput=%.1fMbps", c.Index, c.ThroughputMbps),
			}); err != nil {
				return nil, err
			}
		}
		for _, st := range res.Stalls {
			if err := w.WriteEvent(xcal.Event{
				Time: st.Start,
				Kind: "stall",
				Data: fmt.Sprintf("duration=%v", st.Duration),
			}); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}
