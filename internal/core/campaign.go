package core

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/midband5g/midband/internal/bands"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/xcal"
)

// freqToARFCN converts a carrier's center frequency to the NR raster.
func freqToARFCN(c operators.Carrier) (uint32, error) {
	arfcn, err := bands.FreqToARFCN(c.Band.CenterMHz())
	if err != nil {
		return 0, fmt.Errorf("core: %s: %w", c.Label(), err)
	}
	return arfcn, nil
}

// CampaignConfig parameterizes a full measurement campaign across the
// operator registry.
type CampaignConfig struct {
	// Operators to measure (default: the full mid-band registry).
	Operators []operators.Operator
	// SessionDuration is the bulk-transfer length per operator.
	SessionDuration time.Duration
	// SessionsPerOperator averages the throughput KPIs over several
	// independent sessions, as the campaign methodology does (default 3;
	// the trace captures the first session).
	SessionsPerOperator int
	// LatencyProbes per operator.
	LatencyProbes int
	// TraceDir, when non-empty, receives one .xcal file per session.
	TraceDir string
	// Seed drives all sessions.
	Seed int64
}

// SessionReport is the outcome of one operator's session.
type SessionReport struct {
	Operator  string
	Country   string
	City      string
	DLMbps    float64
	ULMbps    float64
	NRULMbps  float64
	LTEULMbps float64
	// DataBytes is the volume transferred (the Table 1 "data consumed").
	DataBytes float64
	// TracePath is the written capture (empty without TraceDir).
	TracePath string
	// LatencyClean/Retx are the mean §4.3 latencies.
	LatencyClean, LatencyRetx time.Duration
}

// CampaignStats aggregates Table 1.
type CampaignStats struct {
	Countries  map[string]bool
	Cities     map[string]bool
	Operators  int
	Minutes    float64
	DataTB     float64
	Sessions   []SessionReport
	TraceFiles int
}

// RunCampaign measures every configured operator once, stationary with
// full-buffer traffic, and aggregates the dataset statistics.
func RunCampaign(cfg CampaignConfig) (*CampaignStats, error) {
	ops := cfg.Operators
	if len(ops) == 0 {
		ops = operators.MidBand()
	}
	if cfg.SessionDuration == 0 {
		cfg.SessionDuration = 5 * time.Second
	}
	if cfg.LatencyProbes == 0 {
		cfg.LatencyProbes = 2000
	}
	if cfg.SessionsPerOperator == 0 {
		cfg.SessionsPerOperator = 3
	}
	stats := &CampaignStats{
		Countries: map[string]bool{},
		Cities:    map[string]bool{},
	}
	for i, op := range ops {
		sess, err := NewSession(op, operators.Stationary(cfg.Seed+int64(i)*1009))
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", op.Acronym, err)
		}
		var w *xcal.Writer
		var f *os.File
		path := ""
		if cfg.TraceDir != "" {
			path = filepath.Join(cfg.TraceDir, fmt.Sprintf("%s-%s.xcal", op.Acronym, sess.Scenario.Name))
			w, f, err = xcal.CreateFile(path, sess.Meta())
			if err != nil {
				return nil, fmt.Errorf("core: creating trace: %w", err)
			}
		}
		res, err := sess.RunIperf(cfg.SessionDuration, net5g.Saturate, w)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", op.Acronym, err)
		}
		if w != nil {
			if err := w.Flush(); err != nil {
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			stats.TraceFiles++
		}
		// Average the throughput KPIs over further sessions at fresh
		// channel realizations (§2: experiments repeat across time
		// periods; single windows are congestion-episode lottery).
		dl, ul, nrUL, lteUL := res.DLMbps, res.ULMbps, res.NRULMbps, res.LTEULMbps
		for extra := 1; extra < cfg.SessionsPerOperator; extra++ {
			s2, err := NewSession(op, operators.Stationary(cfg.Seed+int64(i)*1009+int64(extra)*31))
			if err != nil {
				return nil, err
			}
			r2, err := s2.RunIperf(cfg.SessionDuration, net5g.Saturate, nil)
			if err != nil {
				return nil, err
			}
			dl += r2.DLMbps
			ul += r2.ULMbps
			nrUL += r2.NRULMbps
			lteUL += r2.LTEULMbps
			stats.Minutes += cfg.SessionDuration.Minutes()
			stats.DataTB += (r2.DLMbps + r2.ULMbps) * 1e6 / 8 * cfg.SessionDuration.Seconds() / 1e12
		}
		n := float64(cfg.SessionsPerOperator)
		res.DLMbps, res.ULMbps, res.NRULMbps, res.LTEULMbps = dl/n, ul/n, nrUL/n, lteUL/n
		clean, retx, err := sess.RunLatency(cfg.LatencyProbes, 0.08)
		if err != nil {
			return nil, fmt.Errorf("core: %s latency: %w", op.Acronym, err)
		}
		rep := SessionReport{
			Operator:     op.Acronym,
			Country:      op.Country,
			City:         op.City,
			DLMbps:       res.DLMbps,
			ULMbps:       res.ULMbps,
			NRULMbps:     res.NRULMbps,
			LTEULMbps:    res.LTEULMbps,
			DataBytes:    (res.DLMbps + res.ULMbps) * 1e6 / 8 * cfg.SessionDuration.Seconds(),
			TracePath:    path,
			LatencyClean: meanDuration(clean),
			LatencyRetx:  meanDuration(retx),
		}
		stats.Sessions = append(stats.Sessions, rep)
		stats.Countries[op.Country] = true
		stats.Cities[op.City] = true
		stats.Minutes += cfg.SessionDuration.Minutes()
		stats.DataTB += rep.DataBytes / 1e12
	}
	stats.Operators = len(ops)
	return stats, nil
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}
