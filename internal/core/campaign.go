package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/midband5g/midband/internal/bands"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/iperf"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/obs"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/xcal"
)

// freqToARFCN converts a carrier's center frequency to the NR raster.
func freqToARFCN(c operators.Carrier) (uint32, error) {
	arfcn, err := bands.FreqToARFCN(c.Band.CenterMHz())
	if err != nil {
		return 0, fmt.Errorf("core: %s: %w", c.Label(), err)
	}
	return arfcn, nil
}

// CampaignConfig parameterizes a full measurement campaign across the
// operator registry.
type CampaignConfig struct {
	// Operators to measure (default: the full mid-band registry).
	Operators []operators.Operator
	// SessionDuration is the bulk-transfer length per operator.
	SessionDuration time.Duration
	// SessionsPerOperator averages the throughput KPIs over several
	// independent sessions, as the campaign methodology does (default 3;
	// the trace captures the first session).
	SessionsPerOperator int
	// LatencyProbes per operator.
	LatencyProbes int
	// TraceDir, when non-empty, receives one .xcal file per session.
	TraceDir string
	// Seed drives all sessions. Each (operator, session) job derives
	// its own seed from the base seed and the job indices — never from
	// worker identity — so results are identical for any Workers value.
	Seed int64
	// Workers bounds the parallel session fan-out (<=0: GOMAXPROCS).
	Workers int
	// Metrics, when non-nil, receives fleet counters (sessions done,
	// simulated slots, trace bytes written).
	Metrics *fleet.Metrics
	// Progress, when non-nil, is called after each session completes.
	Progress func(done, total int, key string)
}

// SessionReport is the outcome of one operator's session.
type SessionReport struct {
	Operator  string
	Country   string
	City      string
	DLMbps    float64
	ULMbps    float64
	NRULMbps  float64
	LTEULMbps float64
	// DataBytes is the volume transferred (the Table 1 "data consumed").
	DataBytes float64
	// TracePath is the written capture (empty without TraceDir).
	TracePath string
	// LatencyClean/Retx are the mean §4.3 latencies.
	LatencyClean, LatencyRetx time.Duration
}

// CampaignStats aggregates Table 1.
type CampaignStats struct {
	Countries  map[string]bool
	Cities     map[string]bool
	Operators  int
	Minutes    float64
	DataTB     float64
	Sessions   []SessionReport
	TraceFiles int
}

// sessionOutcome is what one fleet job (one operator session) produces.
type sessionOutcome struct {
	res       *iperf.Result
	tracePath string
	// clean/retx are the mean latencies, measured on the primary
	// (session-index-0) job only, like the serial campaign did.
	clean, retx time.Duration
}

// runSession executes one operator session — build the link, optionally
// open a trace, run the bulk transfer — and guarantees the trace file is
// flushed and closed on every path. On error the partial .xcal is
// removed so a failed campaign leaves no half-written captures behind.
func runSession(op operators.Operator, sc operators.Scenario, d time.Duration, tracePath string, m *fleet.Metrics) (*Session, *iperf.Result, error) {
	sess, err := NewSession(op, sc)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: %w", op.Acronym, err)
	}
	var w *xcal.Writer
	var f *os.File
	if tracePath != "" {
		w, f, err = xcal.CreateFile(tracePath, sess.Meta())
		if err != nil {
			return nil, nil, fmt.Errorf("core: creating trace: %w", err)
		}
	}
	res, err := sess.RunIperf(d, net5g.Saturate, w)
	if f != nil {
		if err == nil {
			err = w.Flush()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(tracePath)
		} else if m != nil {
			if fi, serr := os.Stat(tracePath); serr == nil {
				m.TraceBytes.Add(fi.Size())
			}
		}
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: %w", op.Acronym, err)
	}
	if m != nil {
		m.SlotsSimulated.Add(int64(len(res.DLBitsPerSlot)))
	}
	return sess, res, nil
}

// RunCampaign measures every configured operator once, stationary with
// full-buffer traffic, and aggregates the dataset statistics.
func RunCampaign(cfg CampaignConfig) (*CampaignStats, error) {
	return RunCampaignContext(context.Background(), cfg)
}

// RunCampaignContext is RunCampaign with cancellation: every
// (operator, session) pair is an independent fleet job, fanned out over
// cfg.Workers workers. Aggregation happens afterwards in submission
// order, so the resulting CampaignStats — including the floating-point
// accumulation order of Minutes and DataTB — is byte-identical for
// workers=1 and workers=N.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*CampaignStats, error) {
	ops := cfg.Operators
	if len(ops) == 0 {
		ops = operators.MidBand()
	}
	if cfg.SessionDuration == 0 {
		cfg.SessionDuration = 5 * time.Second
	}
	if cfg.LatencyProbes == 0 {
		cfg.LatencyProbes = 2000
	}
	if cfg.SessionsPerOperator == 0 {
		cfg.SessionsPerOperator = 3
	}
	spo := cfg.SessionsPerOperator

	// One job per (operator, session index). The session seed is split
	// from the base seed by (operator, session index) alone via
	// fleet.SplitSeed, so no seed ever depends on scheduling.
	jobs := make([]fleet.Job[sessionOutcome], 0, len(ops)*spo)
	for _, op := range ops {
		for k := 0; k < spo; k++ {
			k, op := k, op
			jobs = append(jobs, fleet.Job[sessionOutcome]{
				Key: fmt.Sprintf("%s/%d", op.Acronym, k),
				Run: func(context.Context) (sessionOutcome, error) {
					seed := fleet.SplitSeed(cfg.Seed, op.Acronym, k)
					path := ""
					if k == 0 && cfg.TraceDir != "" {
						sc := operators.Stationary(seed)
						path = filepath.Join(cfg.TraceDir, fmt.Sprintf("%s-%s.xcal", op.Acronym, sc.Name))
					}
					var t0 time.Time
					if obs.Enabled() {
						t0 = time.Now() //detlint:allow walltime per-session wall-cost metric behind the obs gate
					}
					sess, res, err := runSession(op, operators.Stationary(seed), cfg.SessionDuration, path, cfg.Metrics)
					if err != nil {
						return sessionOutcome{}, err
					}
					// Observability only: record the session's wall cost
					// per simulated slot and its goodput. Metrics are
					// write-only here, so obs-on and obs-off campaigns
					// aggregate byte-identically.
					if obs.Enabled() {
						if n := len(res.DLBitsPerSlot); n > 0 {
							obs.Sim.SlotLatencyNs.Observe(float64(time.Since(t0).Nanoseconds()) / float64(n)) //detlint:allow walltime write-only metric; aggregates never depend on it
						}
						obs.Sim.SessionGoodputMbps.Observe(res.DLMbps)
						obs.GoodputMbps(op.Acronym).Observe(res.DLMbps)
					}
					out := sessionOutcome{res: res, tracePath: path}
					if k == 0 {
						// The primary session also probes §4.3 latency.
						clean, retx, err := sess.RunLatency(cfg.LatencyProbes, 0.08)
						if err != nil {
							return sessionOutcome{}, fmt.Errorf("core: %s latency: %w", op.Acronym, err)
						}
						out.clean, out.retx = meanDuration(clean), meanDuration(retx)
					}
					return out, nil
				},
			})
		}
	}
	results, err := fleet.Run(ctx, jobs, fleet.Options{
		Workers:  cfg.Workers,
		Metrics:  cfg.Metrics,
		Progress: cfg.Progress,
	})
	if err != nil {
		return nil, err
	}

	// Deterministic aggregation: walk operators in registry order and
	// sessions in index order, mirroring the serial loop's arithmetic.
	stats := &CampaignStats{
		Countries: map[string]bool{},
		Cities:    map[string]bool{},
	}
	for i, op := range ops {
		base := i * spo
		o0 := results[base].Value
		if o0.tracePath != "" {
			stats.TraceFiles++
		}
		// Average the throughput KPIs over the extra sessions at fresh
		// channel realizations (§2: experiments repeat across time
		// periods; single windows are congestion-episode lottery).
		dl, ul, nrUL, lteUL := o0.res.DLMbps, o0.res.ULMbps, o0.res.NRULMbps, o0.res.LTEULMbps
		for k := 1; k < spo; k++ {
			r2 := results[base+k].Value.res
			dl += r2.DLMbps
			ul += r2.ULMbps
			nrUL += r2.NRULMbps
			lteUL += r2.LTEULMbps
			stats.Minutes += cfg.SessionDuration.Minutes()
			stats.DataTB += (r2.DLMbps + r2.ULMbps) * 1e6 / 8 * cfg.SessionDuration.Seconds() / 1e12
		}
		n := float64(spo)
		rep := SessionReport{
			Operator:     op.Acronym,
			Country:      op.Country,
			City:         op.City,
			DLMbps:       dl / n,
			ULMbps:       ul / n,
			NRULMbps:     nrUL / n,
			LTEULMbps:    lteUL / n,
			DataBytes:    (dl/n + ul/n) * 1e6 / 8 * cfg.SessionDuration.Seconds(),
			TracePath:    o0.tracePath,
			LatencyClean: o0.clean,
			LatencyRetx:  o0.retx,
		}
		stats.Sessions = append(stats.Sessions, rep)
		stats.Countries[op.Country] = true
		stats.Cities[op.City] = true
		stats.Minutes += cfg.SessionDuration.Minutes()
		stats.DataTB += rep.DataBytes / 1e12
	}
	stats.Operators = len(ops)
	return stats, nil
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}
