package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/midband5g/midband/internal/bands"
	"github.com/midband5g/midband/internal/fault"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/iperf"
	"github.com/midband5g/midband/internal/net5g"
	"github.com/midband5g/midband/internal/obs"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/xcal"
	"github.com/midband5g/midband/internal/xcol"
)

// freqToARFCN converts a carrier's center frequency to the NR raster.
func freqToARFCN(c operators.Carrier) (uint32, error) {
	arfcn, err := bands.FreqToARFCN(c.Band.CenterMHz())
	if err != nil {
		return 0, fmt.Errorf("core: %s: %w", c.Label(), err)
	}
	return arfcn, nil
}

// CampaignConfig parameterizes a full measurement campaign across the
// operator registry.
type CampaignConfig struct {
	// Operators to measure (default: the full mid-band registry).
	Operators []operators.Operator
	// SessionDuration is the bulk-transfer length per operator.
	SessionDuration time.Duration
	// SessionsPerOperator averages the throughput KPIs over several
	// independent sessions, as the campaign methodology does (default 3;
	// the trace captures the first session).
	SessionsPerOperator int
	// LatencyProbes per operator.
	LatencyProbes int
	// TraceDir, when non-empty, receives one trace file per session.
	TraceDir string
	// TraceFormat selects the trace container: "xcal" (row frames, the
	// default) or "xcol" (columnar blocks, the streaming-scan format).
	// The extension of the written files follows the format.
	TraceFormat string
	// Seed drives all sessions. Each (operator, session) job derives
	// its own seed from the base seed and the job indices — never from
	// worker identity — so results are identical for any Workers value.
	Seed int64
	// Workers bounds the parallel session fan-out (<=0: GOMAXPROCS).
	Workers int
	// Faults, when non-nil and armed, injects deterministic failures
	// into every session (see package fault) and switches the campaign
	// to graceful degradation: transient failures are retried up to the
	// schedule's MaxAttempts with simulated backoff, and sessions that
	// still fail become Failures provenance on the stats instead of a
	// campaign error. Nil keeps the legacy fail-fast behavior and a
	// byte-identical fault-free campaign.
	Faults *fault.Schedule
	// Metrics, when non-nil, receives fleet counters (sessions done,
	// simulated slots, trace bytes written, retries).
	Metrics *fleet.Metrics
	// Progress, when non-nil, is called after each session completes.
	Progress func(done, total int, key string)
	// UEsPerCell, when > 1, appends a multi-UE contention arm after the
	// per-session measurements: each operator's primary carrier re-runs
	// as one shared cell with this many contending UEs under CellPolicy
	// (see RunMultiUEContext). 0 or 1 keeps the campaign — stats,
	// traces and manifest digest — byte-identical to the legacy
	// single-UE path.
	UEsPerCell int
	// CellPolicy is the multi-UE scheduler (zero value: equal share).
	// Only consulted when UEsPerCell > 1.
	CellPolicy gnb.SchedulerPolicy
}

// SessionReport is the outcome of one operator's session.
type SessionReport struct {
	Operator  string
	Country   string
	City      string
	DLMbps    float64
	ULMbps    float64
	NRULMbps  float64
	LTEULMbps float64
	// DataBytes is the volume transferred (the Table 1 "data consumed").
	DataBytes float64
	// TracePath is the written capture (empty without TraceDir).
	TracePath string
	// LatencyClean/Retx are the mean §4.3 latencies.
	LatencyClean, LatencyRetx time.Duration
	// Sessions is how many of the operator's sessions contributed to the
	// averages (equals SessionsPerOperator unless fault injection
	// failed some).
	Sessions int
}

// SessionFailure records one session that still failed after the
// campaign's bounded retries — the provenance of a hole in the
// aggregate KPIs.
type SessionFailure struct {
	// Key is the fleet job key, "ACRONYM/index".
	Key      string
	Operator string
	// Session is the session index within the operator.
	Session int
	// Attempts is how many times the session ran before giving up.
	Attempts int
	// Stage classifies the failure: "abort", "panic", "trace-io",
	// "cancelled" or "error".
	Stage string
	Err   string
}

// CampaignStats aggregates Table 1.
type CampaignStats struct {
	Countries  map[string]bool
	Cities     map[string]bool
	Operators  int
	Minutes    float64
	DataTB     float64
	Sessions   []SessionReport
	TraceFiles int
	// Failures lists sessions lost to injected (or genuine) faults, in
	// submission order. Empty without fault injection.
	Failures []SessionFailure
	// BackoffSim is the total simulated retry backoff (never slept).
	BackoffSim time.Duration
	// MultiUE holds the contention-arm reports, in registry order.
	// Empty unless CampaignConfig.UEsPerCell > 1.
	MultiUE []MultiUEReport
}

// sessionOutcome is what one fleet job (one operator session) produces.
type sessionOutcome struct {
	res       *iperf.Result
	tracePath string
	// clean/retx are the mean latencies, measured on the primary
	// (session-index-0) job only, like the serial campaign did.
	clean, retx time.Duration
}

// traceWrap adapts a fault session into the xcal.CreateFileVia sink
// hook; nil sessions (or sessions without trace faults armed) wrap
// nothing.
func traceWrap(fs *fault.Session) func(io.Writer) io.Writer {
	if fs == nil {
		return nil
	}
	return func(w io.Writer) io.Writer { return fs.TraceWriter(w) }
}

// openTrace creates the session's capture file in the requested
// container format, returning the format-agnostic writer. The interface
// is only ever bound to a non-nil concrete writer, so the nil checks in
// Session.RunIperf stay meaningful.
func openTrace(format, path string, meta xcal.Meta, fs *fault.Session) (xcal.TraceWriter, *os.File, error) {
	switch format {
	case "", "xcal":
		return xcal.CreateFileVia(path, meta, traceWrap(fs))
	case "xcol":
		return xcol.CreateFileVia(path, meta, traceWrap(fs))
	default:
		return nil, nil, fmt.Errorf("core: unknown trace format %q", format)
	}
}

// traceExt returns the file extension for a trace format.
func traceExt(format string) string {
	if format == "xcol" {
		return "xcol"
	}
	return "xcal"
}

// runSession executes one operator session — build the link, optionally
// open a trace, run the bulk transfer — and guarantees the trace file is
// closed on every path. On error the partial trace is removed so a
// failed campaign leaves no half-written captures behind. A non-nil
// fault session threads injectors into the link, may shorten the
// transfer to an abort point, and may wrap the trace sink with
// write-error injection.
func runSession(op operators.Operator, sc operators.Scenario, d time.Duration, format, tracePath string, m *fleet.Metrics, fs *fault.Session) (*Session, *iperf.Result, error) {
	sess, err := NewSessionWithFaults(op, sc, fs)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: %w", op.Acronym, err)
	}
	aborted := fs != nil && fs.Abort
	if aborted {
		// The schedule kills this session partway through: run the
		// surviving fraction so any partial trace holds real slots, then
		// abandon the measurement below.
		d = time.Duration(float64(d) * fs.AbortFraction)
	}
	var w xcal.TraceWriter
	var f *os.File
	if tracePath != "" {
		w, f, err = openTrace(format, tracePath, sess.Meta(), fs)
		if err != nil {
			return nil, nil, fmt.Errorf("core: creating trace: %w", err)
		}
	}
	res, err := sess.RunIperf(d, net5g.Saturate, w)
	if err == nil && aborted {
		err = fleet.Permanent(fault.ErrSessionAborted)
		if obs.Enabled() {
			obs.Sim.SessionAborts.Inc()
		}
	}
	if f != nil {
		if err == nil {
			// Close, not Flush: the columnar container finalizes its
			// block index and tail here.
			err = w.Close()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(tracePath)
		} else if m != nil {
			if fi, serr := os.Stat(tracePath); serr == nil {
				m.TraceBytes.Add(fi.Size())
			}
		}
	}
	if err != nil {
		if errors.Is(err, fault.ErrInjectedIO) && obs.Enabled() {
			obs.Sim.InjectedTraceErrors.Inc()
		}
		return nil, nil, fmt.Errorf("core: %s: %w", op.Acronym, err)
	}
	if m != nil {
		m.SlotsSimulated.Add(int64(len(res.DLBitsPerSlot)))
	}
	return sess, res, nil
}

// FailureStage classifies a session error into the provenance category
// recorded on SessionFailure ("abort", "trace-io", "cancelled", "panic"
// or "error"). The scenario runner shares it so both campaign paths
// report identical categories.
func FailureStage(err error) string { return failureStage(err) }

// failureStage classifies a session error for provenance reporting.
func failureStage(err error) string {
	switch {
	case errors.Is(err, fault.ErrSessionAborted):
		return "abort"
	case errors.Is(err, fault.ErrInjectedIO):
		return "trace-io"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	case strings.Contains(err.Error(), "panic:"):
		return "panic"
	default:
		return "error"
	}
}

// RunCampaign measures every configured operator once, stationary with
// full-buffer traffic, and aggregates the dataset statistics.
func RunCampaign(cfg CampaignConfig) (*CampaignStats, error) {
	return RunCampaignContext(context.Background(), cfg)
}

// RunCampaignContext is RunCampaign with cancellation: every
// (operator, session) pair is an independent fleet job, fanned out over
// cfg.Workers workers. Aggregation happens afterwards in submission
// order, so the resulting CampaignStats — including the floating-point
// accumulation order of Minutes and DataTB — is byte-identical for
// workers=1 and workers=N, with or without fault injection.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*CampaignStats, error) {
	ops := cfg.Operators
	if len(ops) == 0 {
		ops = operators.MidBand()
	}
	if cfg.SessionDuration == 0 {
		cfg.SessionDuration = 5 * time.Second
	}
	if cfg.LatencyProbes == 0 {
		cfg.LatencyProbes = 2000
	}
	if cfg.SessionsPerOperator == 0 {
		cfg.SessionsPerOperator = 3
	}
	spo := cfg.SessionsPerOperator
	faultsOn := cfg.Faults != nil && cfg.Faults.Config().Active()

	// One job per (operator, session index). The simulation seed is
	// split from the base seed by (operator, session index) alone via
	// fleet.SplitSeed — attempt-independent, so a retry replays the same
	// channel realization; only the fault plan re-draws per attempt.
	jobs := make([]fleet.Job[sessionOutcome], 0, len(ops)*spo)
	for _, op := range ops {
		for k := 0; k < spo; k++ {
			k, op := k, op
			key := fmt.Sprintf("%s/%d", op.Acronym, k)
			jobs = append(jobs, fleet.Job[sessionOutcome]{
				Key: key,
				RunAttempt: func(_ context.Context, attempt int) (sessionOutcome, error) {
					fs := cfg.Faults.Session(key, attempt)
					if fs != nil && fs.Panic {
						panic(fmt.Sprintf("fault: injected worker panic (%s, attempt %d)", key, attempt))
					}
					seed := fleet.SplitSeed(cfg.Seed, op.Acronym, k)
					path := ""
					if k == 0 && cfg.TraceDir != "" {
						sc := operators.Stationary(seed)
						path = filepath.Join(cfg.TraceDir, fmt.Sprintf("%s-%s.%s", op.Acronym, sc.Name, traceExt(cfg.TraceFormat)))
					}
					var t0 time.Time
					if obs.Enabled() {
						t0 = time.Now() //detlint:allow walltime per-session wall-cost metric behind the obs gate
					}
					sess, res, err := runSession(op, operators.Stationary(seed), cfg.SessionDuration, cfg.TraceFormat, path, cfg.Metrics, fs)
					if err != nil {
						return sessionOutcome{}, err
					}
					// Observability only: record the session's wall cost
					// per simulated slot and its goodput. Metrics are
					// write-only here, so obs-on and obs-off campaigns
					// aggregate byte-identically.
					if obs.Enabled() {
						if n := len(res.DLBitsPerSlot); n > 0 {
							obs.Sim.SlotLatencyNs.Observe(float64(time.Since(t0).Nanoseconds()) / float64(n)) //detlint:allow walltime write-only metric; aggregates never depend on it
						}
						obs.Sim.SessionGoodputMbps.Observe(res.DLMbps)
						obs.GoodputMbps(op.Acronym).Observe(res.DLMbps)
					}
					out := sessionOutcome{res: res, tracePath: path}
					if k == 0 {
						// The primary session also probes §4.3 latency.
						clean, retx, err := sess.RunLatency(cfg.LatencyProbes, 0.08)
						if err != nil {
							return sessionOutcome{}, fmt.Errorf("core: %s latency: %w", op.Acronym, err)
						}
						out.clean, out.retx = meanDuration(clean), meanDuration(retx)
					}
					return out, nil
				},
			})
		}
	}
	opts := fleet.Options{
		Workers:  cfg.Workers,
		Metrics:  cfg.Metrics,
		Progress: cfg.Progress,
	}
	var clock fleet.SimClock
	if faultsOn {
		// Graceful degradation: run every job, retry transients with
		// simulated backoff, and convert surviving failures into
		// provenance below instead of failing the campaign.
		opts.OnError = fleet.CollectAll
		opts.MaxAttempts = cfg.Faults.MaxAttempts()
		opts.Clock = &clock
	}
	results, err := fleet.Run(ctx, jobs, opts)
	if err != nil {
		if !faultsOn {
			return nil, err
		}
		if ctx.Err() != nil {
			// External cancellation is not an injected fault; surface it.
			return nil, fmt.Errorf("core: campaign cancelled: %w", ctx.Err())
		}
	}

	// Deterministic aggregation: walk operators in registry order and
	// sessions in index order, mirroring the serial loop's arithmetic.
	// Failed sessions contribute provenance instead of KPIs; with zero
	// failures the float accumulation order is exactly the historical
	// one, so fault-capable and legacy campaigns are byte-identical.
	stats := &CampaignStats{
		Countries: map[string]bool{},
		Cities:    map[string]bool{},
	}
	for i, op := range ops {
		base := i * spo
		var dl, ul, nrUL, lteUL float64
		var primary *sessionOutcome
		nOK := 0
		for k := 0; k < spo; k++ {
			r := &results[base+k]
			if r.Err != nil {
				// Provenance keeps the error's first line only: a recovered
				// panic carries its stack, whose goroutine IDs and addresses
				// would break workers=1 vs workers=N byte-identity.
				msg := r.Err.Error()
				if nl := strings.IndexByte(msg, '\n'); nl >= 0 {
					msg = msg[:nl]
				}
				stats.Failures = append(stats.Failures, SessionFailure{
					Key:      r.Key,
					Operator: op.Acronym,
					Session:  k,
					Attempts: r.Attempts,
					Stage:    failureStage(r.Err),
					Err:      msg,
				})
				if obs.Enabled() {
					obs.Sim.SessionsFailed.Inc()
				}
				continue
			}
			o := r.Value
			if k == 0 {
				primary = &r.Value
			}
			dl += o.res.DLMbps
			ul += o.res.ULMbps
			nrUL += o.res.NRULMbps
			lteUL += o.res.LTEULMbps
			nOK++
			if k > 0 {
				// Extra sessions at fresh channel realizations (§2:
				// experiments repeat across time periods; single windows
				// are congestion-episode lottery).
				stats.Minutes += cfg.SessionDuration.Minutes()
				stats.DataTB += (o.res.DLMbps + o.res.ULMbps) * 1e6 / 8 * cfg.SessionDuration.Seconds() / 1e12
			}
		}
		rep := SessionReport{
			Operator: op.Acronym,
			Country:  op.Country,
			City:     op.City,
			Sessions: nOK,
		}
		if primary != nil {
			if primary.tracePath != "" {
				stats.TraceFiles++
			}
			rep.TracePath = primary.tracePath
			rep.LatencyClean, rep.LatencyRetx = primary.clean, primary.retx
		}
		if nOK > 0 {
			n := float64(nOK)
			rep.DLMbps = dl / n
			rep.ULMbps = ul / n
			rep.NRULMbps = nrUL / n
			rep.LTEULMbps = lteUL / n
			rep.DataBytes = (dl/n + ul/n) * 1e6 / 8 * cfg.SessionDuration.Seconds()
			stats.Minutes += cfg.SessionDuration.Minutes()
			stats.DataTB += rep.DataBytes / 1e12
		}
		stats.Sessions = append(stats.Sessions, rep)
		stats.Countries[op.Country] = true
		stats.Cities[op.City] = true
	}
	stats.Operators = len(ops)
	stats.BackoffSim = clock.Now()
	if cfg.UEsPerCell > 1 {
		mu, err := RunMultiUEContext(ctx, MultiUEConfig{
			Operators:  ops,
			UEsPerCell: cfg.UEsPerCell,
			Policy:     cfg.CellPolicy,
			Duration:   cfg.SessionDuration,
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
			Metrics:    cfg.Metrics,
		})
		if err != nil {
			return nil, err
		}
		stats.MultiUE = mu
	}
	return stats, nil
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}
