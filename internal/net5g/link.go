// Package net5g assembles an end-to-end 5G NSA link out of NR component
// carriers (carrier aggregation) plus the LTE anchor, and provides the
// user-plane latency model of §4.3. It is the layer the workload drivers
// (iperf, video) talk to.
package net5g

import (
	"fmt"
	"time"

	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/lte"
	"github.com/midband5g/midband/internal/xcal"
)

// LinkConfig assembles a link.
type LinkConfig struct {
	// Carriers are the NR component carriers; index 0 is the primary
	// cell. European operators have exactly one (no CA, Table 2); US
	// operators aggregate several (Table 3).
	Carriers []gnb.CarrierConfig
	// LTEAnchor, when non-nil, adds the 4G leg used for NSA UL.
	LTEAnchor *lte.AnchorConfig
	// ULPolicy selects the NSA uplink split.
	ULPolicy lte.ULPolicy
	// ULDynamicThresholdDB is the NR UL per-layer SINR below which
	// ULDynamic shifts traffic to LTE (default 0 dB).
	ULDynamicThresholdDB float64
}

// Validate checks the configuration.
func (c LinkConfig) Validate() error {
	if len(c.Carriers) == 0 {
		return fmt.Errorf("net5g: link needs at least one NR carrier")
	}
	if c.ULPolicy == lte.ULPreferLTE && c.LTEAnchor == nil {
		return fmt.Errorf("net5g: ULPreferLTE requires an LTE anchor")
	}
	return nil
}

// Link is the end-to-end simulator. Not safe for concurrent use.
type Link struct {
	cfg      LinkConfig
	carriers []*gnb.Carrier
	anchor   *gnb.Carrier
	// timeline state: the link steps at the PCell slot duration;
	// carriers with longer slots step when their boundary passes.
	step     time.Duration
	now      time.Duration
	nextTick []time.Duration // per NR carrier
	lteTick  time.Duration

	lastPcellSINR float64 // previous step's PCell SINR, for UL routing
	havePcellSINR bool
	pcellULOffset float64 // PCell ULSINROffsetDB, hoisted off the step path

	results []gnb.SlotResult // reused per-step storage
	ticked  []bool           // reused StepResult.NRTicked storage
	lteRes  gnb.SlotResult   // reused StepResult.LTE storage
}

// NewLink builds the link.
func NewLink(cfg LinkConfig) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &Link{cfg: cfg}
	for i, cc := range cfg.Carriers {
		c, err := gnb.NewCarrier(cc)
		if err != nil {
			return nil, fmt.Errorf("net5g: carrier %d: %w", i, err)
		}
		l.carriers = append(l.carriers, c)
	}
	if cfg.LTEAnchor != nil {
		a, err := lte.NewAnchor(*cfg.LTEAnchor)
		if err != nil {
			return nil, fmt.Errorf("net5g: anchor: %w", err)
		}
		l.anchor = a
	}
	l.step = l.carriers[0].SlotDuration()
	for _, c := range l.carriers {
		if d := c.SlotDuration(); d < l.step {
			l.step = d
		}
	}
	l.nextTick = make([]time.Duration, len(l.carriers))
	l.results = make([]gnb.SlotResult, len(l.carriers))
	l.ticked = make([]bool, len(l.carriers))
	l.pcellULOffset = l.carriers[0].Config().ULSINROffsetDB
	return l, nil
}

// SlotDuration returns the link's stepping period (the shortest carrier
// slot).
func (l *Link) SlotDuration() time.Duration { return l.step }

// Now returns the simulated time.
func (l *Link) Now() time.Duration { return l.now }

// PCell returns the primary NR carrier.
func (l *Link) PCell() *gnb.Carrier { return l.carriers[0] }

// Carriers returns all NR carriers.
func (l *Link) Carriers() []*gnb.Carrier { return l.carriers }

// Anchor returns the LTE anchor carrier (nil if none).
func (l *Link) Anchor() *gnb.Carrier { return l.anchor }

// SetRSRQNeeded forwards the RSRQ need-hint to every component carrier
// and the LTE anchor (see channel.Channel.SetRSRQNeeded). Callers that
// never read the step results' Sample.RSRQdB — warm-up traffic, untraced
// bulk transfers — skip the per-slot dB conversion on every carrier
// without touching any random stream.
func (l *Link) SetRSRQNeeded(needed bool) {
	for _, c := range l.carriers {
		c.SetRSRQNeeded(needed)
	}
	if l.anchor != nil {
		l.anchor.SetRSRQNeeded(needed)
	}
}

// StepResult aggregates one link step.
type StepResult struct {
	// Time is the step's start time.
	Time time.Duration
	// DLBits and ULBits are the goodput delivered this step across all
	// carriers (UL includes the LTE leg).
	DLBits, ULBits int
	// NRULBits and LTEULBits split the uplink by RAT.
	NRULBits, LTEULBits int
	// NR holds the per-carrier slot results for carriers that ticked
	// this step (indices matching Carriers()); entries for carriers that
	// did not tick have a zero Time and nil allocations.
	NR []gnb.SlotResult
	// NRTicked[i] reports whether carrier i produced NR[i] this step.
	NRTicked []bool
	// LTE is the anchor's result if it ticked.
	LTE *gnb.SlotResult
}

// Demand describes offered load for one step.
type Demand struct {
	// DL and UL indicate saturating traffic in each direction.
	DL, UL bool
	// Share is this UE's share of cell resources (1 = alone).
	Share float64
}

// Saturate is full-buffer bidirectional traffic for a lone UE.
var Saturate = Demand{DL: true, UL: true, Share: 1}

// Step advances the link by one step and returns what was delivered. The
// returned slices and the LTE pointer are owned by the Link and valid
// until the next Step.
//
//detlint:zeroalloc
func (l *Link) Step(d Demand) StepResult {
	var res StepResult
	l.StepInto(&res, d)
	return res
}

// StepInto is Step writing the result in place, so a caller's slot loop
// can reuse one StepResult instead of copying ~100 bytes per step. All
// fields of res are overwritten; the slices and the LTE pointer are owned
// by the Link and valid until the next step.
//
//detlint:zeroalloc
func (l *Link) StepInto(res *StepResult, d Demand) {
	if d.Share == 0 {
		d.Share = 1
	}
	res.Time = l.now
	res.DLBits, res.ULBits = 0, 0
	res.NRULBits, res.LTEULBits = 0, 0
	res.NR, res.NRTicked = l.results, l.ticked
	res.LTE = nil

	// Decide the NSA UL route once per step, based on PCell state.
	nrUL := d.UL
	lteUL := false
	if l.anchor != nil {
		switch l.cfg.ULPolicy {
		case lte.ULPreferLTE:
			nrUL, lteUL = false, d.UL
		case lte.ULNROnly:
			// keep nrUL
		default: // ULDynamic: LTE fallback below threshold
			if d.UL && l.pcellULWeak() {
				nrUL, lteUL = false, true
			}
		}
	}

	for i, c := range l.carriers {
		if l.now < l.nextTick[i] {
			// Carriers that do not tick this step report a zero result;
			// ticked entries are fully overwritten by StepInto below.
			res.NRTicked[i] = false
			l.results[i] = gnb.SlotResult{}
			continue
		}
		l.nextTick[i] += c.SlotDuration()
		dl := gnb.Demand{Active: d.DL, Share: d.Share}
		ul := gnb.Demand{Active: nrUL && i == 0, Share: d.Share} // UL rides the PCell
		r := &l.results[i]
		// Carrier result cached for one step only; overwritten before
		// this carrier re-steps.
		c.StepInto(r, dl, ul)
		res.NRTicked[i] = true
		if i == 0 {
			l.lastPcellSINR = r.Sample.SINRdB
			l.havePcellSINR = true
		}
		if r.DL != nil {
			res.DLBits += r.DL.DeliveredBits
		}
		if r.UL != nil {
			res.ULBits += r.UL.DeliveredBits
			res.NRULBits += r.UL.DeliveredBits
		}
	}
	if l.anchor != nil && l.now >= l.lteTick {
		l.lteTick += l.anchor.SlotDuration()
		l.lteRes = l.anchor.Step(gnb.Demand{}, gnb.Demand{Active: lteUL, Share: d.Share}) //detlint:allow bufown anchor result cached for one step only; overwritten before the anchor re-steps
		res.LTE = &l.lteRes
		if ul := l.lteRes.UL; ul != nil {
			res.ULBits += ul.DeliveredBits
			res.LTEULBits += ul.DeliveredBits
		}
	}
	l.now += l.step
}

// pcellULWeak reports whether the NR uplink is currently too weak: the
// previous step's PCell SINR minus the UL power deficit falls below the
// dynamic-split threshold. It is a coarse stand-in for the power-headroom
// reports real gNBs use; the one-step lag mirrors the reporting delay.
func (l *Link) pcellULWeak() bool {
	if !l.havePcellSINR {
		return true // no NR measurement yet: stay on the anchor
	}
	ulSINR := l.lastPcellSINR - l.pcellULOffset
	return ulSINR < l.cfg.ULDynamicThresholdDB
}

// KPIRecords converts a step result into xcal slot records, appending to
// dst and returning it.
func KPIRecords(res StepResult, dst []xcal.SlotKPI) []xcal.SlotKPI {
	for i := range res.NR {
		if !res.NRTicked[i] {
			continue
		}
		dst = appendKPI(dst, &res.NR[i], uint8(i), xcal.NR)
	}
	if res.LTE != nil {
		dst = appendKPI(dst, res.LTE, uint8(len(res.NR)), xcal.LTE)
	}
	return dst
}

func appendKPI(dst []xcal.SlotKPI, r *gnb.SlotResult, carrier uint8, rat xcal.RAT) []xcal.SlotKPI {
	base := xcal.SlotKPI{
		Slot:        r.Slot,
		Time:        r.Time,
		Carrier:     carrier,
		RAT:         rat,
		CQI:         uint8(r.CQI),
		ServingCell: uint16(r.Sample.ServingCell),
		SINRdB:      float32(r.Sample.SINRdB),
		RSRPdBm:     float32(r.Sample.RSRPdBm),
		RSRQdB:      float32(r.Sample.RSRQdB),
		PosX:        float32(r.Sample.Pos.X),
		PosY:        float32(r.Sample.Pos.Y),
		Outage:      r.Sample.Outage,
	}
	emit := func(dir xcal.Direction, a *gnb.Alloc) {
		k := base
		k.Dir = dir
		k.MCSTable = uint8(a.Table)
		k.MCS = a.MCS
		k.Rank = uint8(a.Rank)
		k.HARQRetx = a.HARQRetx
		k.ACK = a.ACK
		k.RBs = uint16(a.RBs)
		k.REs = uint32(a.REs)
		k.TBSBits = uint32(a.TBSBits)
		k.DeliveredBits = uint32(a.DeliveredBits)
		dst = append(dst, k)
	}
	if r.DL != nil {
		emit(xcal.DL, r.DL)
	}
	if r.UL != nil {
		emit(xcal.UL, r.UL)
	}
	if r.DL == nil && r.UL == nil {
		// Idle or outage slot: keep the radio sample for coverage maps.
		dst = append(dst, base)
	}
	return dst
}
