package net5g

import (
	"testing"
	"time"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/lte"
	"github.com/midband5g/midband/internal/phy"
	"github.com/midband5g/midband/internal/tdd"
	"github.com/midband5g/midband/internal/xcal"
)

func nrCarrier(label string, nrb int, seed int64) gnb.CarrierConfig {
	return gnb.CarrierConfig{
		Label:      label,
		Numerology: phy.Mu1,
		NRB:        nrb,
		Pattern:    tdd.MustParse("DDDDDDDSUU"),
		MCSTable:   phy.MCSTable256QAM,
		Channel: channel.Config{
			CarrierFreqMHz:           3500,
			Route:                    channel.Stationary(channel.Point{X: 300}),
			Deployment:               channel.Deployment{Sites: []channel.Point{{}}, TxPowerDBmPerRE: 18},
			OtherCellInterferenceDBm: -100,
			ShadowSigmaDB:            2,
			FastSigmaDB:              1.2,
		},
		ULSINROffsetDB: 6,
		ULMaxRank:      2,
		Seed:           seed,
	}
}

func anchorConfig(seed int64) *lte.AnchorConfig {
	return &lte.AnchorConfig{
		Label:        "lte/20MHz",
		BandwidthMHz: 20,
		Channel: channel.Config{
			CarrierFreqMHz:           2100,
			Route:                    channel.Stationary(channel.Point{X: 250}),
			Deployment:               channel.Deployment{Sites: []channel.Point{{}}, TxPowerDBmPerRE: 18},
			OtherCellInterferenceDBm: -102,
			ShadowSigmaDB:            2,
			FastSigmaDB:              1,
		},
		Seed: seed,
	}
}

func runLink(t *testing.T, l *Link, seconds float64, d Demand) (dlMbps, ulMbps, nrULMbps, lteULMbps float64) {
	t.Helper()
	steps := int(seconds / l.SlotDuration().Seconds())
	var dl, ul, nr, lteBits float64
	for i := 0; i < steps; i++ {
		r := l.Step(d)
		dl += float64(r.DLBits)
		ul += float64(r.ULBits)
		nr += float64(r.NRULBits)
		lteBits += float64(r.LTEULBits)
	}
	return dl / seconds / 1e6, ul / seconds / 1e6, nr / seconds / 1e6, lteBits / seconds / 1e6
}

func TestLinkValidation(t *testing.T) {
	if _, err := NewLink(LinkConfig{}); err == nil {
		t.Error("empty link should fail")
	}
	if _, err := NewLink(LinkConfig{
		Carriers: []gnb.CarrierConfig{nrCarrier("a", 245, 1)},
		ULPolicy: lte.ULPreferLTE,
	}); err == nil {
		t.Error("prefer-LTE without anchor should fail")
	}
	if _, err := NewLink(LinkConfig{Carriers: []gnb.CarrierConfig{{}}}); err == nil {
		t.Error("invalid carrier should fail")
	}
}

func TestCarrierAggregationAddsThroughput(t *testing.T) {
	single, err := NewLink(LinkConfig{Carriers: []gnb.CarrierConfig{nrCarrier("cc0", 245, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := NewLink(LinkConfig{Carriers: []gnb.CarrierConfig{
		nrCarrier("cc0", 245, 1), nrCarrier("cc1", 106, 50),
	}})
	if err != nil {
		t.Fatal(err)
	}
	dl1, _, _, _ := runLink(t, single, 20, Demand{DL: true})
	dl2, _, _, _ := runLink(t, ca, 20, Demand{DL: true})
	// Fig. 23: CA boosts DL markedly; a 106-RB SCell adds ≈ 40%.
	if dl2 < 1.2*dl1 {
		t.Errorf("CA link %.0f Mbps should clearly exceed single carrier %.0f Mbps", dl2, dl1)
	}
}

func TestULPreferLTERoutesToAnchor(t *testing.T) {
	l, err := NewLink(LinkConfig{
		Carriers:  []gnb.CarrierConfig{nrCarrier("cc0", 273, 2)},
		LTEAnchor: anchorConfig(7),
		ULPolicy:  lte.ULPreferLTE,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ul, nrUL, lteUL := runLink(t, l, 20, Demand{UL: true})
	if nrUL != 0 {
		t.Errorf("prefer-LTE should keep NR UL at 0, got %.1f Mbps", nrUL)
	}
	if lteUL <= 0 || ul != lteUL {
		t.Errorf("all UL should ride LTE: total %.1f, lte %.1f", ul, lteUL)
	}
	// §4.2: the LTE anchor outperforms T-Mobile's NR UL but stays modest.
	if lteUL < 10 || lteUL > 120 {
		t.Errorf("LTE UL = %.1f Mbps, want tens of Mbps", lteUL)
	}
}

func TestULDynamicUsesNRWhenStrong(t *testing.T) {
	l, err := NewLink(LinkConfig{
		Carriers:             []gnb.CarrierConfig{nrCarrier("cc0", 245, 3)},
		LTEAnchor:            anchorConfig(8),
		ULPolicy:             lte.ULDynamic,
		ULDynamicThresholdDB: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, nrUL, lteUL := runLink(t, l, 20, Demand{UL: true})
	if nrUL <= 0 {
		t.Error("dynamic policy on a strong channel should use NR UL")
	}
	// Weak NR UL: huge UL deficit pushes traffic to LTE.
	weak := nrCarrier("cc0", 245, 4)
	weak.ULSINROffsetDB = 40
	l2, err := NewLink(LinkConfig{
		Carriers:             []gnb.CarrierConfig{weak},
		LTEAnchor:            anchorConfig(9),
		ULPolicy:             lte.ULDynamic,
		ULDynamicThresholdDB: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, nrUL2, lteUL2 := runLink(t, l2, 20, Demand{UL: true})
	if lteUL2 <= lteUL {
		t.Errorf("weak NR UL should shift traffic to LTE: strong-case %.1f, weak-case %.1f", lteUL, lteUL2)
	}
	if nrUL2 > nrUL/4 {
		t.Errorf("weak NR UL should carry little traffic: %.1f vs %.1f", nrUL2, nrUL)
	}
}

func TestMixedNumerologyTicks(t *testing.T) {
	// A 15 kHz FDD SCell (e.g. T-Mobile's n25) ticks every other PCell slot.
	fddCC := nrCarrier("n25", 106, 5)
	fddCC.FDD = true
	fddCC.Pattern = tdd.Pattern{}
	fddCC.Numerology = phy.Mu0
	l, err := NewLink(LinkConfig{Carriers: []gnb.CarrierConfig{nrCarrier("n41", 273, 6), fddCC}})
	if err != nil {
		t.Fatal(err)
	}
	pcellTicks, scellTicks := 0, 0
	for i := 0; i < 4000; i++ {
		r := l.Step(Demand{DL: true})
		if r.NRTicked[0] {
			pcellTicks++
		}
		if r.NRTicked[1] {
			scellTicks++
		}
	}
	if pcellTicks != 4000 {
		t.Errorf("PCell ticked %d/4000", pcellTicks)
	}
	if scellTicks < 1990 || scellTicks > 2010 {
		t.Errorf("15 kHz SCell ticked %d, want ≈ 2000", scellTicks)
	}
}

func TestKPIRecords(t *testing.T) {
	l, err := NewLink(LinkConfig{
		Carriers:  []gnb.CarrierConfig{nrCarrier("cc0", 245, 10)},
		LTEAnchor: anchorConfig(11),
		ULPolicy:  lte.ULPreferLTE,
	})
	if err != nil {
		t.Fatal(err)
	}
	var recs []xcal.SlotKPI
	for i := 0; i < 8000; i++ {
		recs = KPIRecords(l.Step(Saturate), recs)
	}
	var dl, ul, lteRecs int
	for _, r := range recs {
		if r.RAT == xcal.LTE {
			lteRecs++
		}
		if r.DeliveredBits > 0 {
			if r.Dir == xcal.DL {
				dl++
			} else {
				ul++
			}
		}
		if r.RBs > 273 {
			t.Fatalf("record with %d RBs exceeds any configured carrier", r.RBs)
		}
	}
	if dl == 0 || ul == 0 || lteRecs == 0 {
		t.Errorf("records missing categories: dl=%d ul=%d lte=%d", dl, ul, lteRecs)
	}
}

func latencyModel(t *testing.T, pattern string, sr bool, seed int64) *LatencyModel {
	t.Helper()
	cfg := LatencyConfig{
		SlotDuration: 500 * time.Microsecond,
		UEProcess:    100 * time.Microsecond,
		GNBProcess:   100 * time.Microsecond,
		SRBasedUL:    sr,
		DLBLER:       0.05,
		ULBLER:       0.05,
		Seed:         seed,
	}
	if pattern != "" {
		cfg.Pattern = tdd.MustParse(pattern)
	}
	m, err := NewLatencyModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func meanMs(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return float64(s) / float64(len(ds)) / 1e6
}

func TestLatencyFrameStructureOrdering(t *testing.T) {
	// The §4.3 mechanism: DDDSU with preconfigured grants ≈ 2 ms;
	// DDDDDDDSUU with an SR cycle ≈ 7 ms. BLER adds a little.
	fast, fastRetx := latencyModel(t, "DDDSU", false, 1).Samples(20000)
	slow, slowRetx := latencyModel(t, "DDDDDDDSUU", true, 2).Samples(20000)
	mFast, mSlow := meanMs(fast), meanMs(slow)
	if mFast < 1.2 || mFast > 3.2 {
		t.Errorf("DDDSU preconfigured latency = %.2f ms, want ≈ 2", mFast)
	}
	if mSlow < 5.5 || mSlow > 8.5 {
		t.Errorf("DDDDDDDSUU SR latency = %.2f ms, want ≈ 7", mSlow)
	}
	if mSlow <= mFast {
		t.Error("bunched-UL SR pattern must be slower")
	}
	if meanMs(fastRetx) <= mFast {
		t.Errorf("retransmitted bucket (%.2f) should exceed clean bucket (%.2f)", meanMs(fastRetx), mFast)
	}
	if meanMs(slowRetx) <= mSlow {
		t.Errorf("retransmitted bucket (%.2f) should exceed clean bucket (%.2f)", meanMs(slowRetx), mSlow)
	}
}

func TestLatencyFDDFloor(t *testing.T) {
	fdd, _ := latencyModel(t, "", false, 3).Samples(5000)
	tddSamples, _ := latencyModel(t, "DDDSU", false, 4).Samples(5000)
	if meanMs(fdd) >= meanMs(tddSamples) {
		t.Errorf("FDD (%.2f ms) should beat TDD (%.2f ms): no UL alignment wait", meanMs(fdd), meanMs(tddSamples))
	}
}

func TestLatencyValidation(t *testing.T) {
	if _, err := NewLatencyModel(LatencyConfig{}); err == nil {
		t.Error("missing slot duration should fail")
	}
	if _, err := NewLatencyModel(LatencyConfig{SlotDuration: time.Millisecond, DLBLER: 1.5}); err == nil {
		t.Error("BLER 1.5 should fail")
	}
}

func TestLinkClock(t *testing.T) {
	l, err := NewLink(LinkConfig{Carriers: []gnb.CarrierConfig{nrCarrier("cc0", 245, 12)}})
	if err != nil {
		t.Fatal(err)
	}
	if l.Now() != 0 {
		t.Error("fresh link at t=0")
	}
	for i := 0; i < 10; i++ {
		l.Step(Demand{})
	}
	if l.Now() != 10*l.SlotDuration() {
		t.Errorf("after 10 steps Now = %v", l.Now())
	}
	if l.PCell() == nil || len(l.Carriers()) != 1 || l.Anchor() != nil {
		t.Error("accessor results wrong")
	}
}

// TestLinkStepAllocs pins the aggregated slot loop — NR carriers plus the
// LTE anchor — at zero allocations per Step in steady state. The returned
// slices and LTE pointer are owned by the Link, so nothing escapes.
func TestLinkStepAllocs(t *testing.T) {
	l, err := NewLink(LinkConfig{
		Carriers: []gnb.CarrierConfig{
			nrCarrier("cc0", 245, 1), nrCarrier("cc1", 106, 50),
		},
		LTEAnchor: anchorConfig(9),
		ULPolicy:  lte.ULDynamic,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		l.Step(Demand{DL: true, UL: true})
	}
	allocs := testing.AllocsPerRun(5000, func() {
		l.Step(Demand{DL: true, UL: true})
	})
	if allocs > 0 {
		t.Errorf("Link.Step allocates %.3f objects/slot in steady state, want 0", allocs)
	}
}
