package net5g

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/midband5g/midband/internal/tdd"
)

// LatencyConfig parameterizes the PHY user-plane latency model of §4.3:
// DL-plus-UL one-way latency for a small probe, dominated by TDD frame
// alignment, the scheduling-request cycle and HARQ retransmissions.
// Channel bandwidth plays no role — exactly the paper's finding.
type LatencyConfig struct {
	// Pattern is the TDD frame (zero value means FDD: every slot carries
	// both directions).
	Pattern tdd.Pattern
	// SlotDuration is the slot length.
	SlotDuration time.Duration
	// UEProcess and GNBProcess are per-node processing delays.
	UEProcess, GNBProcess time.Duration
	// SRBasedUL makes uplink data wait for a scheduling-request → grant
	// cycle; operators with preconfigured grants skip it. This is the
	// configuration difference that separates Vodafone Italy's ~7 ms
	// from Vodafone Germany's ~2 ms.
	SRBasedUL bool
	// DLBLER and ULBLER are the per-leg first-transmission error rates.
	DLBLER, ULBLER float64
	// RetxDelay is the extra delay of one fast retransmission (wait for
	// the next same-direction opportunity). Zero selects one slot.
	RetxDelay time.Duration
	// Seed drives the arrival-phase and error sampling.
	Seed int64
}

// Validate checks the configuration.
func (c LatencyConfig) Validate() error {
	if c.SlotDuration <= 0 {
		return fmt.Errorf("net5g: latency model needs a slot duration")
	}
	if c.DLBLER < 0 || c.DLBLER >= 1 || c.ULBLER < 0 || c.ULBLER >= 1 {
		return fmt.Errorf("net5g: BLER out of range: dl=%g ul=%g", c.DLBLER, c.ULBLER)
	}
	return nil
}

// LatencySample is one probe's outcome.
type LatencySample struct {
	// Total is the PHY user-plane latency (DL + UL legs).
	Total time.Duration
	// Retransmitted reports whether any leg needed a HARQ
	// retransmission (the paper's BLER > 0 bucket).
	Retransmitted bool
}

// dataTxSlots is the on-air time of a small latency probe in slot units.
// Probes fit in a type-B "mini-slot" allocation of roughly half a slot —
// which is also why channel bandwidth has no bearing on latency (§4.3).
const dataTxSlots = 0.5

// LatencyModel draws user-plane latency samples.
type LatencyModel struct {
	cfg LatencyConfig
	rng *rand.Rand
	fdd bool
}

// NewLatencyModel builds the model.
func NewLatencyModel(cfg LatencyConfig) (*LatencyModel, error) {
	if cfg.RetxDelay == 0 {
		cfg.RetxDelay = cfg.SlotDuration
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &LatencyModel{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		fdd: cfg.Pattern.Period() == 0,
	}, nil
}

// slotsUntil returns the wait (in slot units, fractional) from time t (in
// slots) until the start of the next slot satisfying ok.
func (m *LatencyModel) slotsUntil(t float64, ok func(int64) bool) float64 {
	j := int64(t)
	if float64(j) < t {
		j++
	}
	for k := int64(0); ; k++ {
		if ok(j + k) {
			return float64(j+k) - t
		}
		if m.fdd {
			return float64(j) - t
		}
		if k > int64(4*m.cfg.Pattern.Period()) {
			return 0 // defensive: pattern without the needed slot type
		}
	}
}

func (m *LatencyModel) isDL(s int64) bool {
	return m.fdd || m.cfg.Pattern.DLSymbols(s) > 0
}

func (m *LatencyModel) isUL(s int64) bool {
	return m.fdd || m.cfg.Pattern.Slot(s) == tdd.Uplink
}

// isULOpportunity also accepts special slots, whose few UL symbols carry
// PUCCH control (scheduling requests) but not PUSCH data.
func (m *LatencyModel) isULOpportunity(s int64) bool {
	return m.fdd || m.cfg.Pattern.ULSymbols(s) > 0
}

// Sample draws one user-plane latency probe. Following the paper's
// definition ("PHY DL plus UL latency", after [24, 27]), the DL and UL legs
// are measured independently — each from its own uniformly random arrival
// phase — and summed.
func (m *LatencyModel) Sample() LatencySample {
	slot := m.cfg.SlotDuration.Seconds()
	period := 1.0
	if !m.fdd {
		period = float64(m.cfg.Pattern.Period())
	}

	retx := false

	// DL leg: packet at the gNB waits for a DL slot, one slot on air,
	// then UE processing.
	dl := m.rng.Float64() * period
	start := dl
	dl += m.slotsUntil(dl, m.isDL)
	dl += dataTxSlots
	if m.rng.Float64() < m.cfg.DLBLER {
		retx = true
		dl += m.cfg.RetxDelay.Seconds() / slot
	}
	dl += m.cfg.UEProcess.Seconds() / slot
	dlLeg := dl - start

	// UL leg: packet at the UE (optionally) runs the SR→grant cycle,
	// transmits on the next full UL slot, then gNB processing.
	ul := m.rng.Float64() * period
	start = ul
	if m.cfg.SRBasedUL {
		// Scheduling request: a short PUCCH on the next slot with UL
		// symbols (special slots qualify)...
		ul += m.slotsUntil(ul, m.isULOpportunity)
		ul += 0.5
		// ...then the grant DCI on the next PDCCH occasion.
		ul += m.cfg.GNBProcess.Seconds() / slot
		ul += m.slotsUntil(ul, m.isDL)
		ul += 0.5
	}
	ul += m.slotsUntil(ul, m.isUL)
	ul += dataTxSlots
	if m.rng.Float64() < m.cfg.ULBLER {
		// Retransmission grants are prescheduled; the retx rides the
		// next opportunity without a fresh SR cycle.
		retx = true
		ul += m.cfg.RetxDelay.Seconds() / slot
	}
	ul += m.cfg.GNBProcess.Seconds() / slot
	ulLeg := ul - start

	return LatencySample{
		Total:         time.Duration((dlLeg + ulLeg) * slot * float64(time.Second)),
		Retransmitted: retx,
	}
}

// Samples draws n probes and splits them into the paper's Fig. 11 buckets:
// BLER = 0 (no retransmission) and BLER > 0.
func (m *LatencyModel) Samples(n int) (clean, retx []time.Duration) {
	for i := 0; i < n; i++ {
		s := m.Sample()
		if s.Retransmitted {
			retx = append(retx, s.Total)
		} else {
			clean = append(clean, s.Total)
		}
	}
	return clean, retx
}
