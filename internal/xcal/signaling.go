package xcal

import (
	"encoding/binary"
	"fmt"
)

// This file models the control-plane messages Appendix 10.1 of the paper
// decodes to recover each operator's channel configuration: the MIB the UE
// reads during initial access, the SIB1 carrying the carrier's frequency
// resources, and the per-slot DCI whose format selects the MCS table.

// MIB is the master information block (TS 38.331 §6.2.2, abridged to the
// fields the extraction procedure uses).
type MIB struct {
	// SFN is the system frame number.
	SFN uint16
	// SCSkHz is the common subcarrier spacing.
	SCSkHz uint16
	// ControlResourceSetZero and SearchSpaceZero locate SIB1 (the
	// Table 13-x lookups of TS 38.213).
	ControlResourceSetZero uint8
	SearchSpaceZero        uint8
}

const mibSize = 6

// AppendTo encodes the MIB.
func (m *MIB) AppendTo(buf []byte) []byte {
	var b [mibSize]byte
	binary.LittleEndian.PutUint16(b[0:], m.SFN)
	binary.LittleEndian.PutUint16(b[2:], m.SCSkHz)
	b[4] = m.ControlResourceSetZero
	b[5] = m.SearchSpaceZero
	return append(buf, b[:]...)
}

// DecodeMIB decodes a MIB from b.
func DecodeMIB(b []byte, m *MIB) error {
	if len(b) < mibSize {
		return fmt.Errorf("xcal: MIB truncated: %d bytes", len(b))
	}
	m.SFN = binary.LittleEndian.Uint16(b[0:])
	m.SCSkHz = binary.LittleEndian.Uint16(b[2:])
	m.ControlResourceSetZero = b[4]
	m.SearchSpaceZero = b[5]
	return nil
}

// SIB1 carries the cell's frequency and access configuration (TS 38.331
// ServingCellConfigCommonSIB, abridged). CarrierBandwidthRB is expressed in
// resource blocks; recovering the channel bandwidth in MHz requires the
// TS 38.101-1 Table 5.3.2-1 lookup the paper's appendix describes.
type SIB1 struct {
	// CellID is the physical cell identity.
	CellID uint32
	// Band is the NR band designator (e.g. "n78").
	Band string
	// AbsoluteFrequencyPointA is the NR-ARFCN of point A.
	AbsoluteFrequencyPointA uint32
	// OffsetToCarrier is in RBs from point A.
	OffsetToCarrier uint16
	// CarrierBandwidthRB is the carrier bandwidth in resource blocks.
	CarrierBandwidthRB uint16
	// SCSkHz is the carrier subcarrier spacing.
	SCSkHz uint16
	// FDD is true for paired-spectrum carriers.
	FDD bool
	// TDDPattern is the UL/DL pattern string (empty for FDD).
	TDDPattern string
	// MaxMIMOLayers is the configured maximum DL MIMO layers.
	MaxMIMOLayers uint8
	// MCSTable is the configured PDSCH MCS table (1 or 2).
	MCSTable uint8
}

// AppendTo encodes the SIB1.
func (s *SIB1) AppendTo(buf []byte) []byte {
	if len(s.Band) > 255 || len(s.TDDPattern) > 255 {
		panic("xcal: SIB1 string field too long")
	}
	var fixed [16]byte
	binary.LittleEndian.PutUint32(fixed[0:], s.CellID)
	binary.LittleEndian.PutUint32(fixed[4:], s.AbsoluteFrequencyPointA)
	binary.LittleEndian.PutUint16(fixed[8:], s.OffsetToCarrier)
	binary.LittleEndian.PutUint16(fixed[10:], s.CarrierBandwidthRB)
	binary.LittleEndian.PutUint16(fixed[12:], s.SCSkHz)
	if s.FDD {
		fixed[14] = 1
	}
	fixed[15] = s.MaxMIMOLayers
	buf = append(buf, fixed[:]...)
	buf = append(buf, s.MCSTable)
	buf = append(buf, uint8(len(s.Band)))
	buf = append(buf, s.Band...)
	buf = append(buf, uint8(len(s.TDDPattern)))
	buf = append(buf, s.TDDPattern...)
	return buf
}

// DecodeSIB1 decodes a SIB1 from b.
func DecodeSIB1(b []byte, s *SIB1) error {
	if len(b) < 18 {
		return fmt.Errorf("xcal: SIB1 truncated: %d bytes", len(b))
	}
	s.CellID = binary.LittleEndian.Uint32(b[0:])
	s.AbsoluteFrequencyPointA = binary.LittleEndian.Uint32(b[4:])
	s.OffsetToCarrier = binary.LittleEndian.Uint16(b[8:])
	s.CarrierBandwidthRB = binary.LittleEndian.Uint16(b[10:])
	s.SCSkHz = binary.LittleEndian.Uint16(b[12:])
	s.FDD = b[14] != 0
	s.MaxMIMOLayers = b[15]
	s.MCSTable = b[16]
	rest := b[17:]
	bandLen := int(rest[0])
	if len(rest) < 1+bandLen+1 {
		return fmt.Errorf("xcal: SIB1 band field truncated")
	}
	s.Band = string(rest[1 : 1+bandLen])
	rest = rest[1+bandLen:]
	patLen := int(rest[0])
	if len(rest) < 1+patLen {
		return fmt.Errorf("xcal: SIB1 TDD pattern truncated")
	}
	s.TDDPattern = string(rest[1 : 1+patLen])
	return nil
}

// DCIFormat distinguishes the downlink control information formats relevant
// to the paper: format 1_1 implies the 256QAM MCS table, format 1_0 the
// 64QAM table (§3.1).
type DCIFormat uint8

const (
	// DCI10 is fallback format 1_0.
	DCI10 DCIFormat = 0
	// DCI11 is format 1_1.
	DCI11 DCIFormat = 1
)

func (f DCIFormat) String() string {
	if f == DCI11 {
		return "1_1"
	}
	return "1_0"
}

// MCSTable returns the PDSCH MCS table implied by the format.
func (f DCIFormat) MCSTable() uint8 {
	if f == DCI11 {
		return 2
	}
	return 1
}

// DCI is a downlink control information capture (abridged).
type DCI struct {
	// Slot is the slot the grant applies to.
	Slot int64
	// Format is 1_0 or 1_1.
	Format DCIFormat
	// Carrier is the component carrier index.
	Carrier uint8
	// MCS, RBs, Rank echo the scheduled allocation.
	MCS  uint8
	RBs  uint16
	Rank uint8
	// HARQProcess is the HARQ process number.
	HARQProcess uint8
	// NDI is the new-data indicator (false marks a retransmission).
	NDI bool
}

const dciSize = 15

// AppendTo encodes the DCI.
func (d *DCI) AppendTo(buf []byte) []byte {
	var b [dciSize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(d.Slot))
	b[8] = uint8(d.Format)
	b[9] = d.Carrier
	b[10] = d.MCS
	binary.LittleEndian.PutUint16(b[11:], d.RBs)
	b[13] = d.Rank
	var last uint8 = d.HARQProcess << 1
	if d.NDI {
		last |= 1
	}
	b[14] = last
	return append(buf, b[:]...)
}

// DecodeDCI decodes a DCI from b.
func DecodeDCI(b []byte, d *DCI) error {
	if len(b) < dciSize {
		return fmt.Errorf("xcal: DCI truncated: %d bytes", len(b))
	}
	d.Slot = int64(binary.LittleEndian.Uint64(b[0:]))
	d.Format = DCIFormat(b[8])
	d.Carrier = b[9]
	d.MCS = b[10]
	d.RBs = binary.LittleEndian.Uint16(b[11:])
	d.Rank = b[13]
	d.NDI = b[14]&1 != 0
	d.HARQProcess = b[14] >> 1
	return nil
}
