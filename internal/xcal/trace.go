package xcal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Trace file layout:
//
//	magic "XCAL5GMB" | version u16 | frames...
//
// Each frame is [type u8][length u32 LE][payload]. The first frame must be
// a Meta frame. ErrEndOfTrace (io.EOF) ends the stream cleanly.

var traceMagic = [8]byte{'X', 'C', 'A', 'L', '5', 'G', 'M', 'B'}

// TraceMagic is the row-container magic, exported so tools can sniff a
// file's format before choosing a reader.
var TraceMagic = traceMagic

// TraceWriter is the sink a capture session writes through — KPI
// records plus control-plane signaling and event annotations. Both the
// row Writer here and the columnar xcol.Writer implement it, so the
// simulation core is format-agnostic: campaigns pick the container,
// sessions just write. Close finalizes the stream (for containers with
// a footer this is what makes the file complete); Flush only pushes
// buffered bytes.
type TraceWriter interface {
	WriteKPI(k *SlotKPI) error
	WriteMIB(m *MIB) error
	WriteSIB1(s *SIB1) error
	WriteDCI(d *DCI) error
	WriteEvent(e Event) error
	Flush() error
	Close() error
}

// TraceVersion is the current format version.
const TraceVersion uint16 = 1

// FrameType tags the payload of a trace frame.
type FrameType uint8

const (
	// FrameMeta is the JSON-encoded trace metadata.
	FrameMeta FrameType = 1
	// FrameKPI is a SlotKPI record.
	FrameKPI FrameType = 2
	// FrameMIB is a MIB capture.
	FrameMIB FrameType = 3
	// FrameSIB1 is a SIB1 capture.
	FrameSIB1 FrameType = 4
	// FrameDCI is a DCI capture.
	FrameDCI FrameType = 5
	// FrameEvent is a free-form application event annotation.
	FrameEvent FrameType = 6
)

// Meta describes a capture session, mirroring the campaign dimensions of
// the paper's Table 1.
type Meta struct {
	Operator     string        `json:"operator"`
	Country      string        `json:"country"`
	City         string        `json:"city"`
	CarrierLabel string        `json:"carrier_label"`
	Scenario     string        `json:"scenario"`
	SlotDuration time.Duration `json:"slot_duration"`
	Start        time.Time     `json:"start"`
	Notes        string        `json:"notes,omitempty"`
}

// Event is a timestamped application-level annotation (e.g. video chunk
// fetches) that lets the analysis cross-correlate PHY KPIs with application
// decisions, as §6 of the paper does.
type Event struct {
	Time time.Duration `json:"time"`
	Kind string        `json:"kind"`
	Data string        `json:"data,omitempty"`
}

// Writer writes a trace stream.
type Writer struct {
	w    *bufio.Writer
	buf  []byte
	head [5]byte
	err  error
}

// NewWriter writes the trace header and metadata frame to w.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := tw.w.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], TraceVersion)
	if _, err := tw.w.Write(v[:]); err != nil {
		return nil, err
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("xcal: encoding meta: %w", err)
	}
	tw.frame(FrameMeta, mb)
	return tw, tw.err
}

func (w *Writer) frame(t FrameType, payload []byte) {
	if w.err != nil {
		return
	}
	w.head[0] = uint8(t)
	binary.LittleEndian.PutUint32(w.head[1:], uint32(len(payload)))
	if _, err := w.w.Write(w.head[:]); err != nil {
		w.err = err
		return
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = err
	}
}

// WriteKPI appends a slot KPI record.
func (w *Writer) WriteKPI(k *SlotKPI) error {
	w.buf = k.AppendTo(w.buf[:0])
	w.frame(FrameKPI, w.buf)
	return w.err
}

// WriteMIB appends a MIB capture.
func (w *Writer) WriteMIB(m *MIB) error {
	w.buf = m.AppendTo(w.buf[:0])
	w.frame(FrameMIB, w.buf)
	return w.err
}

// WriteSIB1 appends a SIB1 capture.
func (w *Writer) WriteSIB1(s *SIB1) error {
	w.buf = s.AppendTo(w.buf[:0])
	w.frame(FrameSIB1, w.buf)
	return w.err
}

// WriteDCI appends a DCI capture.
func (w *Writer) WriteDCI(d *DCI) error {
	w.buf = d.AppendTo(w.buf[:0])
	w.frame(FrameDCI, w.buf)
	return w.err
}

// WriteEvent appends an application event annotation.
func (w *Writer) WriteEvent(e Event) error {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("xcal: encoding event: %w", err)
	}
	w.frame(FrameEvent, b)
	return w.err
}

// Flush flushes buffered frames to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Close finalizes the stream. The row container has no footer, so
// Close is just Flush; it exists to satisfy TraceWriter.
func (w *Writer) Close() error { return w.Flush() }

// Reader reads a trace stream. Next decodes each frame into storage owned
// by the Reader; the returned pointers are valid only until the following
// Next call (NoCopy semantics — copy if you need to retain them).
type Reader struct {
	r    *bufio.Reader
	meta Meta
	buf  []byte

	// Decoded frame storage, reused across Next calls.
	KPI   SlotKPI
	MIB   MIB
	SIB1  SIB1
	DCI   DCI
	Event Event
}

// NewReader validates the header and reads the metadata frame.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{r: bufio.NewReaderSize(r, 1<<16)}
	var head [10]byte
	if _, err := io.ReadFull(tr.r, head[:]); err != nil {
		return nil, fmt.Errorf("xcal: reading trace header: %w", err)
	}
	if [8]byte(head[:8]) != traceMagic {
		return nil, errors.New("xcal: bad magic: not an XCAL trace")
	}
	if v := binary.LittleEndian.Uint16(head[8:]); v != TraceVersion {
		return nil, fmt.Errorf("xcal: unsupported trace version %d", v)
	}
	t, payload, err := tr.nextFrame()
	if err != nil {
		return nil, fmt.Errorf("xcal: reading meta frame: %w", err)
	}
	if t != FrameMeta {
		return nil, fmt.Errorf("xcal: first frame is %d, want meta", t)
	}
	if err := json.Unmarshal(payload, &tr.meta); err != nil {
		return nil, fmt.Errorf("xcal: decoding meta: %w", err)
	}
	return tr, nil
}

// Meta returns the trace metadata.
func (r *Reader) Meta() Meta { return r.meta }

const maxFrameSize = 1 << 20

func (r *Reader) nextFrame() (FrameType, []byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r.r, head[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("xcal: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(head[1:])
	if n > maxFrameSize {
		return 0, nil, fmt.Errorf("xcal: frame of %d bytes exceeds limit", n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return 0, nil, fmt.Errorf("xcal: reading frame payload: %w", err)
	}
	return FrameType(head[0]), r.buf, nil
}

// Next reads the next frame, decodes it into the Reader's reusable fields
// (KPI, MIB, SIB1, DCI, Event according to the returned type) and returns
// its type. It returns io.EOF at end of trace.
func (r *Reader) Next() (FrameType, error) {
	t, payload, err := r.nextFrame()
	if err != nil {
		return 0, err
	}
	switch t {
	case FrameKPI:
		return t, DecodeSlotKPI(payload, &r.KPI)
	case FrameMIB:
		return t, DecodeMIB(payload, &r.MIB)
	case FrameSIB1:
		return t, DecodeSIB1(payload, &r.SIB1)
	case FrameDCI:
		return t, DecodeDCI(payload, &r.DCI)
	case FrameEvent:
		r.Event = Event{}
		return t, json.Unmarshal(payload, &r.Event)
	case FrameMeta:
		return t, json.Unmarshal(payload, &r.meta)
	default:
		return t, fmt.Errorf("xcal: unknown frame type %d", t)
	}
}

// CreateFile creates a trace file on disk.
func CreateFile(path string, meta Meta) (*Writer, *os.File, error) {
	return CreateFileVia(path, meta, nil)
}

// CreateFileVia is CreateFile with the on-disk sink wrapped by wrap
// before the trace writer buffers on top of it — the hook fault
// injection uses to make trace-sink I/O errors reachable in tests and
// campaigns. A nil wrap writes straight to the file. Errors injected by
// the wrapper surface through the Writer's usual sticky-error path, so
// callers need no special handling beyond what real I/O failures
// already require.
func CreateFileVia(path string, meta Meta, wrap func(io.Writer) io.Writer) (*Writer, *os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	var sink io.Writer = f
	if wrap != nil {
		sink = wrap(f)
	}
	w, err := NewWriter(sink, meta)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, nil, err
	}
	return w, f, nil
}

// OpenFile opens a trace file for reading.
func OpenFile(path string) (*Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}
