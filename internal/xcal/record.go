// Package xcal implements the slot-level KPI trace format that stands in for
// the professional chipset logger (Accuver XCAL) used in the paper's
// campaign: fixed-size per-slot KPI records, control-plane signaling
// captures (MIB, SIB1, DCI) and a framed trace file with metadata.
//
// The decoder follows the preallocated-decode idiom: Reader.Next decodes
// into reusable storage owned by the Reader, so steady-state reading of
// multi-gigabyte traces does not allocate per record.
package xcal

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Direction labels the link direction of a slot record.
type Direction uint8

const (
	// DL is downlink.
	DL Direction = 0
	// UL is uplink.
	UL Direction = 1
)

func (d Direction) String() string {
	if d == UL {
		return "UL"
	}
	return "DL"
}

// RAT is the radio access technology of a record; NSA uplink traffic can
// ride on either (paper §4.2).
type RAT uint8

const (
	// NR is 5G New Radio.
	NR RAT = 0
	// LTE is the 4G anchor.
	LTE RAT = 1
)

func (r RAT) String() string {
	if r == LTE {
		return "LTE"
	}
	return "NR"
}

// SlotKPI is one slot's worth of lower-layer KPIs for one carrier — the
// finest time-scale record the paper's analysis operates on (τ = 0.5 ms).
type SlotKPI struct {
	// Slot is the absolute slot index since trace start.
	Slot int64
	// Time is the offset from trace start.
	Time time.Duration
	// Carrier identifies the component carrier (0 = PCell).
	Carrier uint8
	// RAT distinguishes NR from the LTE anchor.
	RAT RAT
	// Dir is the link direction of the allocation.
	Dir Direction
	// CQI is the most recent channel quality indicator fed back.
	CQI uint8
	// MCSTable is 1 (64QAM) or 2 (256QAM) per the DCI format in effect.
	MCSTable uint8
	// MCS is the modulation and coding scheme index signaled in DCI.
	MCS uint8
	// Rank is the number of MIMO layers used.
	Rank uint8
	// HARQRetx counts prior transmissions of this TB (0 = initial).
	HARQRetx uint8
	// ACK reports whether the transport block decoded successfully.
	ACK bool
	// Outage marks slots with no service (mmWave coverage holes).
	Outage bool
	// RBs is the number of resource blocks allocated.
	RBs uint16
	// ServingCell is the serving physical cell index.
	ServingCell uint16
	// REs is the number of resource elements allocated.
	REs uint32
	// TBSBits is the transport block size in bits.
	TBSBits uint32
	// DeliveredBits is the goodput contribution (0 on HARQ failure).
	DeliveredBits uint32
	// SINRdB, RSRPdBm, RSRQdB are the radio measurements.
	SINRdB, RSRPdBm, RSRQdB float32
	// PosX, PosY are the UE position in meters.
	PosX, PosY float32
}

// SlotKPISize is the fixed encoded size of a SlotKPI record.
const SlotKPISize = 64

const (
	flagACK    = 1 << 0
	flagOutage = 1 << 1
)

// AppendTo encodes the record and appends it to buf.
func (k *SlotKPI) AppendTo(buf []byte) []byte {
	var b [SlotKPISize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(k.Slot))
	binary.LittleEndian.PutUint64(b[8:], uint64(k.Time))
	b[16] = k.Carrier
	b[17] = uint8(k.RAT)
	b[18] = uint8(k.Dir)
	b[19] = k.CQI
	b[20] = k.MCSTable
	b[21] = k.MCS
	b[22] = k.Rank
	b[23] = k.HARQRetx
	var flags uint8
	if k.ACK {
		flags |= flagACK
	}
	if k.Outage {
		flags |= flagOutage
	}
	b[24] = flags
	binary.LittleEndian.PutUint16(b[26:], k.RBs)
	binary.LittleEndian.PutUint16(b[28:], k.ServingCell)
	binary.LittleEndian.PutUint32(b[32:], k.REs)
	binary.LittleEndian.PutUint32(b[36:], k.TBSBits)
	binary.LittleEndian.PutUint32(b[40:], k.DeliveredBits)
	binary.LittleEndian.PutUint32(b[44:], math.Float32bits(k.SINRdB))
	binary.LittleEndian.PutUint32(b[48:], math.Float32bits(k.RSRPdBm))
	binary.LittleEndian.PutUint32(b[52:], math.Float32bits(k.RSRQdB))
	binary.LittleEndian.PutUint32(b[56:], math.Float32bits(k.PosX))
	binary.LittleEndian.PutUint32(b[60:], math.Float32bits(k.PosY))
	return append(buf, b[:]...)
}

// DecodeSlotKPI decodes a record from b into k without allocating. It
// is strict: the payload must be exactly SlotKPISize bytes with zero
// padding and no unknown flag bits, so every accepted record re-encodes
// byte-identically via AppendTo — the property format conversions and
// the fuzz harness rely on.
func DecodeSlotKPI(b []byte, k *SlotKPI) error {
	if len(b) != SlotKPISize {
		return fmt.Errorf("xcal: slot KPI record is %d bytes, want %d", len(b), SlotKPISize)
	}
	if b[24]&^(flagACK|flagOutage) != 0 {
		return fmt.Errorf("xcal: slot KPI record has unknown flag bits %#x", b[24])
	}
	if b[25] != 0 || b[30] != 0 || b[31] != 0 {
		return fmt.Errorf("xcal: slot KPI record has nonzero padding")
	}
	k.Slot = int64(binary.LittleEndian.Uint64(b[0:]))
	k.Time = time.Duration(binary.LittleEndian.Uint64(b[8:]))
	k.Carrier = b[16]
	k.RAT = RAT(b[17])
	k.Dir = Direction(b[18])
	k.CQI = b[19]
	k.MCSTable = b[20]
	k.MCS = b[21]
	k.Rank = b[22]
	k.HARQRetx = b[23]
	k.ACK = b[24]&flagACK != 0
	k.Outage = b[24]&flagOutage != 0
	k.RBs = binary.LittleEndian.Uint16(b[26:])
	k.ServingCell = binary.LittleEndian.Uint16(b[28:])
	k.REs = binary.LittleEndian.Uint32(b[32:])
	k.TBSBits = binary.LittleEndian.Uint32(b[36:])
	k.DeliveredBits = binary.LittleEndian.Uint32(b[40:])
	k.SINRdB = math.Float32frombits(binary.LittleEndian.Uint32(b[44:]))
	k.RSRPdBm = math.Float32frombits(binary.LittleEndian.Uint32(b[48:]))
	k.RSRQdB = math.Float32frombits(binary.LittleEndian.Uint32(b[52:]))
	k.PosX = math.Float32frombits(binary.LittleEndian.Uint32(b[56:]))
	k.PosY = math.Float32frombits(binary.LittleEndian.Uint32(b[60:]))
	return nil
}
