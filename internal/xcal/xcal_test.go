package xcal

import (
	"bytes"
	"io"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func randomKPI(rng *rand.Rand) SlotKPI {
	return SlotKPI{
		Slot:          rng.Int63(),
		Time:          time.Duration(rng.Int63()),
		Carrier:       uint8(rng.Intn(4)),
		RAT:           RAT(rng.Intn(2)),
		Dir:           Direction(rng.Intn(2)),
		CQI:           uint8(rng.Intn(16)),
		MCSTable:      uint8(1 + rng.Intn(2)),
		MCS:           uint8(rng.Intn(29)),
		Rank:          uint8(1 + rng.Intn(4)),
		HARQRetx:      uint8(rng.Intn(4)),
		ACK:           rng.Intn(2) == 0,
		Outage:        rng.Intn(10) == 0,
		RBs:           uint16(rng.Intn(274)),
		ServingCell:   uint16(rng.Intn(1000)),
		REs:           rng.Uint32(),
		TBSBits:       rng.Uint32(),
		DeliveredBits: rng.Uint32(),
		SINRdB:        float32(rng.NormFloat64() * 10),
		RSRPdBm:       float32(-80 + rng.NormFloat64()*5),
		RSRQdB:        float32(-11 + rng.NormFloat64()),
		PosX:          float32(rng.NormFloat64() * 100),
		PosY:          float32(rng.NormFloat64() * 100),
	}
}

func TestSlotKPIRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		in := randomKPI(rng)
		b := in.AppendTo(nil)
		if len(b) != SlotKPISize {
			t.Fatalf("encoded size = %d, want %d", len(b), SlotKPISize)
		}
		var out SlotKPI
		if err := DecodeSlotKPI(b, &out); err != nil {
			t.Fatal(err)
		}
		if in != out {
			t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
		}
	}
	var k SlotKPI
	if err := DecodeSlotKPI(make([]byte, 10), &k); err == nil {
		t.Error("truncated KPI should fail to decode")
	}
}

func TestMIBRoundTrip(t *testing.T) {
	in := MIB{SFN: 512, SCSkHz: 30, ControlResourceSetZero: 5, SearchSpaceZero: 2}
	var out MIB
	if err := DecodeMIB(in.AppendTo(nil), &out); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Fatalf("MIB round trip: %+v vs %+v", in, out)
	}
	if err := DecodeMIB([]byte{1}, &out); err == nil {
		t.Error("truncated MIB should fail")
	}
}

func TestSIB1RoundTrip(t *testing.T) {
	f := func(cell uint32, arfcn uint32, off, rb, scs uint16, fdd bool, layers, table uint8) bool {
		in := SIB1{
			CellID:                  cell,
			Band:                    "n78",
			AbsoluteFrequencyPointA: arfcn,
			OffsetToCarrier:         off,
			CarrierBandwidthRB:      rb,
			SCSkHz:                  scs,
			FDD:                     fdd,
			TDDPattern:              "DDDDDDDSUU",
			MaxMIMOLayers:           layers,
			MCSTable:                table,
		}
		var out SIB1
		if err := DecodeSIB1(in.AppendTo(nil), &out); err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Empty strings survive.
	in := SIB1{Band: "", TDDPattern: ""}
	var out SIB1
	if err := DecodeSIB1(in.AppendTo(nil), &out); err != nil {
		t.Fatal(err)
	}
	if out.Band != "" || out.TDDPattern != "" {
		t.Error("empty strings should round trip")
	}
	if err := DecodeSIB1(make([]byte, 4), &out); err == nil {
		t.Error("truncated SIB1 should fail")
	}
	// Truncated band field.
	full := (&SIB1{Band: "n78", TDDPattern: "DDDSU"}).AppendTo(nil)
	if err := DecodeSIB1(full[:19], &out); err == nil {
		t.Error("SIB1 with cut band should fail")
	}
}

func TestDCIRoundTrip(t *testing.T) {
	f := func(slot int64, fm bool, carrier, mcs uint8, rbs uint16, rank uint8, harq uint8, ndi bool) bool {
		in := DCI{
			Slot: slot, Format: DCIFormat(0), Carrier: carrier, MCS: mcs,
			RBs: rbs, Rank: rank, HARQProcess: harq % 16, NDI: ndi,
		}
		if fm {
			in.Format = DCI11
		}
		var out DCI
		if err := DecodeDCI(in.AppendTo(nil), &out); err != nil {
			return false
		}
		return in == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if DCI10.MCSTable() != 1 || DCI11.MCSTable() != 2 {
		t.Error("DCI format → MCS table mapping wrong")
	}
	if DCI10.String() != "1_0" || DCI11.String() != "1_1" {
		t.Error("DCI format strings wrong")
	}
}

func testMeta() Meta {
	return Meta{
		Operator: "V_Sp", Country: "Spain", City: "Madrid",
		CarrierLabel: "n78/90MHz", Scenario: "stationary-dl",
		SlotDuration: 500 * time.Microsecond,
		Start:        time.Date(2024, 1, 15, 10, 0, 0, 0, time.UTC),
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	kpis := make([]SlotKPI, 500)
	for i := range kpis {
		kpis[i] = randomKPI(rng)
	}
	mib := MIB{SFN: 100, SCSkHz: 30}
	sib := SIB1{CellID: 7, Band: "n78", CarrierBandwidthRB: 245, SCSkHz: 30, TDDPattern: "DDDDDDDSUU", MaxMIMOLayers: 4, MCSTable: 2}
	ev := Event{Time: 42 * time.Millisecond, Kind: "chunk-fetch", Data: "q=6"}
	if err := w.WriteMIB(&mib); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSIB1(&sib); err != nil {
		t.Fatal(err)
	}
	for i := range kpis {
		if err := w.WriteKPI(&kpis[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteDCI(&DCI{Slot: 9, Format: DCI11, MCS: 20, RBs: 245, Rank: 4, NDI: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvent(ev); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Meta(); got.Operator != "V_Sp" || got.SlotDuration != 500*time.Microsecond {
		t.Errorf("meta = %+v", got)
	}
	var gotKPI int
	var sawMIB, sawSIB, sawDCI, sawEvent bool
	for {
		ft, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ft {
		case FrameKPI:
			if r.KPI != kpis[gotKPI] {
				t.Fatalf("KPI %d mismatch", gotKPI)
			}
			gotKPI++
		case FrameMIB:
			sawMIB = r.MIB == mib
		case FrameSIB1:
			sawSIB = reflect.DeepEqual(r.SIB1, sib)
		case FrameDCI:
			sawDCI = r.DCI.Format == DCI11 && r.DCI.RBs == 245
		case FrameEvent:
			sawEvent = r.Event == ev
		}
	}
	if gotKPI != len(kpis) {
		t.Errorf("read %d KPIs, want %d", gotKPI, len(kpis))
	}
	if !sawMIB || !sawSIB || !sawDCI || !sawEvent {
		t.Errorf("missing frames: mib=%v sib=%v dci=%v event=%v", sawMIB, sawSIB, sawDCI, sawEvent)
	}
}

func TestTraceBadInputs(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("notatrace!"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	// Valid magic, bad version.
	b := append(append([]byte{}, traceMagic[:]...), 0xFF, 0xFF)
	if _, err := NewReader(bytes.NewReader(b)); err == nil {
		t.Error("bad version should fail")
	}
	// Header only, no meta frame.
	b = append(append([]byte{}, traceMagic[:]...), 1, 0)
	if _, err := NewReader(bytes.NewReader(b)); err == nil {
		t.Error("missing meta frame should fail")
	}
}

func TestTraceFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.xcal")
	w, f, err := CreateFile(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	k := randomKPI(rand.New(rand.NewSource(1)))
	if err := w.WriteKPI(&k); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, rf, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	ft, err := r.Next()
	if err != nil || ft != FrameKPI || r.KPI != k {
		t.Fatalf("file round trip: type=%v err=%v", ft, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestStrings(t *testing.T) {
	if DL.String() != "DL" || UL.String() != "UL" || NR.String() != "NR" || LTE.String() != "LTE" {
		t.Error("enum strings wrong")
	}
}

func BenchmarkKPIEncode(b *testing.B) {
	k := randomKPI(rand.New(rand.NewSource(2)))
	buf := make([]byte, 0, SlotKPISize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = k.AppendTo(buf[:0])
	}
}

func BenchmarkKPIDecode(b *testing.B) {
	k := randomKPI(rand.New(rand.NewSource(3)))
	buf := k.AppendTo(nil)
	var out SlotKPI
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeSlotKPI(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}
