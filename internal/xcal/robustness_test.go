package xcal

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"
)

// TestReaderNeverPanicsOnCorruption feeds the reader truncations and random
// byte flips of a valid trace; it must return errors (or clean EOF), never
// panic — the property a trace inspector needs against damaged captures.
func TestReaderNeverPanicsOnCorruption(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Operator: "V_Sp", SlotDuration: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		k := randomKPI(rng)
		if err := w.WriteKPI(&k); err != nil {
			t.Fatal(err)
		}
	}
	sib := SIB1{CellID: 1, Band: "n78", CarrierBandwidthRB: 245, SCSkHz: 30, TDDPattern: "DDDSU"}
	if err := w.WriteSIB1(&sib); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	drain := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("reader panicked: %v", r)
			}
		}()
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // header rejected: fine
		}
		for i := 0; i < 1000; i++ {
			if _, err := r.Next(); err != nil {
				return // io.EOF or a decode error: fine
			}
		}
	}

	// Truncations at every prefix length (sampled).
	for n := 0; n < len(valid); n += 7 {
		drain(valid[:n])
	}
	// Random single-byte corruptions.
	for trial := 0; trial < 300; trial++ {
		corrupted := append([]byte(nil), valid...)
		corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		drain(corrupted)
	}
	// Random garbage.
	for trial := 0; trial < 100; trial++ {
		garbage := make([]byte, rng.Intn(200))
		rng.Read(garbage)
		drain(garbage)
	}
}

// TestFrameSizeLimit ensures oversized frames are rejected rather than
// allocated.
func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Append a frame header claiming 16 MiB.
	buf.Write([]byte{byte(FrameKPI), 0, 0, 0, 1})
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Error("oversized frame should produce a hard error")
	}
}
