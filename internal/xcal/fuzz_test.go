package xcal

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the decoders. `go test` exercises the seed
// corpus; `go test -fuzz=FuzzDecodeSlotKPI ./internal/xcal` explores
// further.

func FuzzDecodeSlotKPI(f *testing.F) {
	k := SlotKPI{Slot: 42, RBs: 245, TBSBits: 100000, ACK: true}
	f.Add(k.AppendTo(nil))
	f.Add([]byte{})
	f.Add(make([]byte, SlotKPISize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		var out SlotKPI
		if err := DecodeSlotKPI(data, &out); err == nil {
			// A successful decode must re-encode losslessly: the frame is
			// fixed-size with zero padding and no spare flag bits, so the
			// bytes themselves must round-trip too.
			enc := out.AppendTo(nil)
			if !bytes.Equal(enc, data[:SlotKPISize]) {
				t.Fatalf("SlotKPI re-encode diverged from accepted input:\n in %x\nout %x", data[:SlotKPISize], enc)
			}
			var back SlotKPI
			if err := DecodeSlotKPI(enc, &back); err != nil {
				t.Fatalf("re-decode of valid SlotKPI failed: %v", err)
			}
			if back != out {
				t.Fatalf("SlotKPI round trip diverged: %+v vs %+v", out, back)
			}
		}
	})
}

func FuzzDecodeSIB1(f *testing.F) {
	s := SIB1{CellID: 7, Band: "n78", CarrierBandwidthRB: 245, SCSkHz: 30, TDDPattern: "DDDDDDDSUU"}
	f.Add(s.AppendTo(nil))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out SIB1
		if err := DecodeSIB1(data, &out); err == nil {
			// A successful decode must re-encode losslessly.
			var back SIB1
			if err := DecodeSIB1(out.AppendTo(nil), &back); err != nil {
				t.Fatalf("re-decode of valid SIB1 failed: %v", err)
			}
			if back != out {
				t.Fatalf("SIB1 round trip diverged: %+v vs %+v", out, back)
			}
		}
	})
}

func FuzzDecodeMIB(f *testing.F) {
	m := MIB{SFN: 512, SCSkHz: 30, ControlResourceSetZero: 1}
	f.Add(m.AppendTo(nil))
	f.Add([]byte{})
	f.Add(make([]byte, mibSize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		var out MIB
		if err := DecodeMIB(data, &out); err == nil {
			// A successful decode must re-encode losslessly.
			var back MIB
			if err := DecodeMIB(out.AppendTo(nil), &back); err != nil {
				t.Fatalf("re-decode of valid MIB failed: %v", err)
			}
			if back != out {
				t.Fatalf("MIB round trip diverged: %+v vs %+v", out, back)
			}
		}
	})
}

func FuzzDecodeDCI(f *testing.F) {
	d := DCI{Slot: 42, Format: DCI11, Carrier: 1, MCS: 22, RBs: 245, Rank: 4, HARQProcess: 7, NDI: true}
	f.Add(d.AppendTo(nil))
	f.Add([]byte{})
	f.Add(make([]byte, dciSize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		var out DCI
		if err := DecodeDCI(data, &out); err == nil {
			// The HARQProcess/NDI bit-packing must survive a round trip.
			var back DCI
			if err := DecodeDCI(out.AppendTo(nil), &back); err != nil {
				t.Fatalf("re-decode of valid DCI failed: %v", err)
			}
			if back != out {
				t.Fatalf("DCI round trip diverged: %+v vs %+v", out, back)
			}
		}
	})
}

func FuzzTraceReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Operator: "V_Sp"})
	if err != nil {
		f.Fatal(err)
	}
	k := SlotKPI{Slot: 1}
	_ = w.WriteKPI(&k)
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("XCAL5GMB"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 100; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
