// Package lte models the 4G anchor carrier of NSA deployments. In every
// operator the paper studied, uplink traffic rides on the LTE leg some or
// most of the time (§4.2: T-Mobile prefers LTE for UL outright); the anchor
// is also what the UE falls back to during 5G outages.
package lte

import (
	"fmt"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/phy"
)

// AnchorConfig describes an LTE anchor cell.
type AnchorConfig struct {
	// Label names the anchor in traces.
	Label string
	// BandwidthMHz is the LTE channel bandwidth (typ. 10–20).
	BandwidthMHz int
	// Channel is the anchor's radio environment. LTE low/mid-band macro
	// coverage is typically better than the 5G carrier's (larger cells,
	// mature deployment), which is exactly why NSA UL prefers it.
	Channel channel.Config
	// ULSINROffsetDB derates UL relative to DL.
	ULSINROffsetDB float64
	// Seed drives the anchor's randomness.
	Seed int64
}

// NRBForBandwidth maps LTE bandwidth to resource blocks (TS 36.101: 5→25,
// 10→50, 15→75, 20→100).
func NRBForBandwidth(mhz int) (int, error) {
	switch mhz {
	case 5:
		return 25, nil
	case 10:
		return 50, nil
	case 15:
		return 75, nil
	case 20:
		return 100, nil
	default:
		return 0, fmt.Errorf("lte: unsupported LTE bandwidth %d MHz", mhz)
	}
}

// NewAnchor builds the anchor as an FDD carrier at 15 kHz numerology with
// LTE-grade limits: 64QAM maximum, rank ≤ 2 DL / 1 UL.
func NewAnchor(cfg AnchorConfig) (*gnb.Carrier, error) {
	nrb, err := NRBForBandwidth(cfg.BandwidthMHz)
	if err != nil {
		return nil, err
	}
	if cfg.ULSINROffsetDB == 0 {
		cfg.ULSINROffsetDB = 4
	}
	cc := gnb.CarrierConfig{
		Label:          cfg.Label,
		Numerology:     phy.Mu0,
		NRB:            nrb,
		FDD:            true,
		MCSTable:       phy.MCSTable64QAM,
		Channel:        cfg.Channel,
		ULSINROffsetDB: cfg.ULSINROffsetDB,
		ULMaxRank:      1,
		Seed:           cfg.Seed,
	}
	cc.CSI.MaxRank = 2
	return gnb.NewCarrier(cc)
}

// ULPolicy selects how NSA splits uplink between NR and LTE (§4.2).
type ULPolicy uint8

const (
	// ULDynamic sends UL on NR when its channel is usable and on LTE
	// otherwise (the common European behaviour).
	ULDynamic ULPolicy = iota
	// ULPreferLTE routes UL to LTE whenever the anchor exists
	// (T-Mobile's observed behaviour).
	ULPreferLTE
	// ULNROnly forces UL onto NR (SA-style; used for ablations).
	ULNROnly
)

func (p ULPolicy) String() string {
	switch p {
	case ULPreferLTE:
		return "prefer-lte"
	case ULNROnly:
		return "nr-only"
	default:
		return "dynamic"
	}
}
