package lte

import (
	"testing"

	"github.com/midband5g/midband/internal/channel"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/phy"
)

func testAnchorConfig() AnchorConfig {
	return AnchorConfig{
		Label:        "lte/20MHz",
		BandwidthMHz: 20,
		Channel: channel.Config{
			CarrierFreqMHz:           2100,
			Route:                    channel.Stationary(channel.Point{X: 250}),
			Deployment:               channel.Deployment{Sites: []channel.Point{{}}, TxPowerDBmPerRE: 18},
			OtherCellInterferenceDBm: -102,
		},
		Seed: 3,
	}
}

func TestNRBForBandwidth(t *testing.T) {
	cases := map[int]int{5: 25, 10: 50, 15: 75, 20: 100}
	for bw, want := range cases {
		got, err := NRBForBandwidth(bw)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("NRB(%d MHz) = %d, want %d", bw, got, want)
		}
	}
	if _, err := NRBForBandwidth(40); err == nil {
		t.Error("40 MHz is not an LTE bandwidth")
	}
}

func TestAnchorProperties(t *testing.T) {
	a, err := NewAnchor(testAnchorConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := a.Config()
	if !cfg.FDD || cfg.Numerology != phy.Mu0 || cfg.NRB != 100 {
		t.Errorf("anchor config wrong: %+v", cfg)
	}
	if cfg.MCSTable != phy.MCSTable64QAM {
		t.Error("LTE anchor should cap at 64QAM")
	}
	if cfg.ULMaxRank != 1 {
		t.Error("LTE UL should be single layer")
	}
}

func TestAnchorULThroughputRange(t *testing.T) {
	a, err := NewAnchor(testAnchorConfig())
	if err != nil {
		t.Fatal(err)
	}
	bits := 0.0
	const slots = 30000 // 30 s at 1 ms
	for i := 0; i < slots; i++ {
		r := a.Step(gnb.Demand{}, gnb.Demand{Active: true, Share: 1})
		if r.UL != nil {
			bits += float64(r.UL.DeliveredBits)
		}
	}
	mbps := bits / 30 / 1e6
	// Fig. 10's LTE_US box sits at ≈ 45–73 Mbps; a healthy 20 MHz anchor
	// lands in the tens of Mbps.
	if mbps < 20 || mbps > 110 {
		t.Errorf("LTE UL = %.1f Mbps, want tens of Mbps", mbps)
	}
}

func TestAnchorBadBandwidth(t *testing.T) {
	cfg := testAnchorConfig()
	cfg.BandwidthMHz = 7
	if _, err := NewAnchor(cfg); err == nil {
		t.Error("unsupported bandwidth should fail")
	}
}

func TestULPolicyString(t *testing.T) {
	if ULDynamic.String() != "dynamic" || ULPreferLTE.String() != "prefer-lte" || ULNROnly.String() != "nr-only" {
		t.Error("policy strings wrong")
	}
}
