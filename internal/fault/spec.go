package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses a -faults CLI spec into a schedule. The spec is a
// comma-separated key=value list; an empty spec returns a nil schedule
// (no injection). Keys:
//
//	rlf=P          per-slot radio-link-failure probability
//	reestablish=N  RLF re-establishment delay in slots
//	blackout=P     per-slot SINR-blackout probability
//	blackoutdur=N  blackout window length in slots
//	blackoutdb=D   blackout SINR suppression in dB
//	trace=P        per-write trace-sink error probability
//	abort=P        per-session mid-transfer abort probability
//	panic=P        per-attempt worker panic probability
//	attempts=N     per-session attempt bound (retry budget)
//	seed=N         fault-schedule base seed
//
// Example: "rlf=2e-4,abort=0.25,trace=1e-3,seed=7".
func ParseSpec(spec string) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var cfg Config
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault: spec entry %q is not key=value", kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "reestablish", "blackoutdur", "attempts", "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: spec %s=%q: %v", k, v, err)
			}
			switch k {
			case "reestablish":
				cfg.RLFReestablishSlots = int(n)
			case "blackoutdur":
				cfg.BlackoutDurationSlots = int(n)
			case "attempts":
				cfg.MaxAttempts = int(n)
			case "seed":
				cfg.Seed = n
			}
		case "rlf", "blackout", "blackoutdb", "trace", "abort", "panic":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: spec %s=%q: %v", k, v, err)
			}
			switch k {
			case "rlf":
				cfg.RLFProbPerSlot = f
			case "blackout":
				cfg.BlackoutProbPerSlot = f
			case "blackoutdb":
				cfg.BlackoutDepthDB = f
			case "trace":
				cfg.TraceErrorPerWrite = f
			case "abort":
				cfg.SessionAbortProb = f
			case "panic":
				cfg.WorkerPanicProb = f
			}
		default:
			return nil, fmt.Errorf("fault: unknown spec key %q", k)
		}
	}
	// Validate before the Active check: a negative rate must report its
	// [0,1] violation, not fall through Active (which only sees > 0) to a
	// misleading "arms no fault class".
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Active() {
		return nil, fmt.Errorf("fault: spec %q arms no fault class (set at least one of rlf, blackout, trace, abort, panic)", spec)
	}
	return NewSchedule(cfg)
}
