// Package fault is the deterministic fault-injection subsystem: a
// seed-driven [Schedule] decides — independently of worker count,
// scheduling order or wall time — which sessions suffer radio-link
// failures, SINR blackout windows, trace-sink I/O errors, mid-session
// aborts or worker panics. The field campaign the simulator reproduces
// is full of exactly these events (coverage holes, handover
// interruptions, radio-link failures, lost sessions), and the paper's
// KPI tails are shaped by them, so the simulator treats them as
// first-class inputs rather than errors.
//
// Determinism contract: every fault decision derives from the schedule
// seed via [fleet.SplitSeed] over (session key, attempt) — never from
// worker identity or completion order — so a campaign with faults
// enabled is byte-identical for Workers=1 and Workers=N. With no
// schedule installed (the default), no component draws a single extra
// random number, keeping the fault path strictly opt-in and the
// disabled hot path zero-cost (a nil check per slot).
package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/midband5g/midband/internal/fleet"
)

// ErrInjectedIO is the error surfaced by [Writer] when the schedule
// injects a trace-sink write failure.
var ErrInjectedIO = errors.New("fault: injected I/O error")

// ErrSessionAborted marks a session the schedule chose to abort
// mid-transfer. It is a permanent failure: retrying cannot help, the
// session is gone (the UE lost coverage, the app was killed). Campaign
// runners record it as failure provenance instead of failing the run.
var ErrSessionAborted = errors.New("fault: session aborted")

// Config parameterizes a fault schedule. The zero value injects
// nothing; any non-zero rate arms the corresponding fault class.
type Config struct {
	// RLFProbPerSlot is the per-slot probability of a radio-link
	// failure on each NR carrier. An RLF interrupts data for
	// RLFReestablishSlots slots (RRC re-establishment) and desyncs the
	// CSI feedback loop, which must re-prime afterwards.
	RLFProbPerSlot float64
	// RLFReestablishSlots is the re-establishment delay in slots
	// (default 240 ≈ 120 ms at 30 kHz SCS, the RRC promotion delay).
	RLFReestablishSlots int
	// BlackoutProbPerSlot is the per-slot probability that a SINR
	// blackout window opens on a carrier's channel (deep coverage hole,
	// passing obstruction).
	BlackoutProbPerSlot float64
	// BlackoutDurationSlots is the blackout window length
	// (default 400 ≈ 200 ms at 30 kHz SCS).
	BlackoutDurationSlots int
	// BlackoutDepthDB is the SINR suppression inside a window
	// (default 40 dB — deep enough to drive CQI to 0).
	BlackoutDepthDB float64
	// TraceErrorPerWrite is the per-write probability that a trace
	// sink write fails with [ErrInjectedIO].
	TraceErrorPerWrite float64
	// SessionAbortProb is the per-session probability of a mid-transfer
	// abort (permanent: never retried).
	SessionAbortProb float64
	// WorkerPanicProb is the per-attempt probability that the session's
	// job panics, exercising the fleet's panic recovery (transient:
	// retried attempts re-draw).
	WorkerPanicProb float64
	// MaxAttempts bounds per-session attempts when a campaign retries
	// transient failures (default 3; 1 disables retry).
	MaxAttempts int
	// Seed is the fault-schedule base seed, independent of the
	// simulation seed so fault patterns can vary while the underlying
	// channel realizations stay fixed (and vice versa).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.RLFReestablishSlots == 0 {
		c.RLFReestablishSlots = 240
	}
	if c.BlackoutDurationSlots == 0 {
		c.BlackoutDurationSlots = 400
	}
	if c.BlackoutDepthDB == 0 {
		c.BlackoutDepthDB = 40
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"rlf", c.RLFProbPerSlot},
		{"blackout", c.BlackoutProbPerSlot},
		{"trace", c.TraceErrorPerWrite},
		{"abort", c.SessionAbortProb},
		{"panic", c.WorkerPanicProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s probability %g outside [0,1]", p.name, p.v)
		}
	}
	if c.RLFReestablishSlots < 1 || c.BlackoutDurationSlots < 1 {
		return fmt.Errorf("fault: non-positive fault durations (reestablish=%d, blackout=%d)",
			c.RLFReestablishSlots, c.BlackoutDurationSlots)
	}
	if c.BlackoutDepthDB < 0 {
		return fmt.Errorf("fault: blackout depth %g dB negative", c.BlackoutDepthDB)
	}
	if c.MaxAttempts < 1 {
		return fmt.Errorf("fault: max attempts %d < 1", c.MaxAttempts)
	}
	return nil
}

// Active reports whether any fault class is armed.
func (c Config) Active() bool {
	return c.RLFProbPerSlot > 0 || c.BlackoutProbPerSlot > 0 ||
		c.TraceErrorPerWrite > 0 || c.SessionAbortProb > 0 || c.WorkerPanicProb > 0
}

// Schedule is a validated fault plan. A nil *Schedule means no
// injection anywhere; a non-nil schedule hands each session a
// deterministic [Session] derived from (key, attempt).
type Schedule struct {
	cfg Config
}

// NewSchedule validates cfg and returns the schedule.
func NewSchedule(cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Schedule{cfg: cfg.withDefaults()}, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Schedule) Config() Config {
	if s == nil {
		return Config{}
	}
	return s.cfg
}

// MaxAttempts returns the per-session attempt bound (1 for a nil
// schedule).
func (s *Schedule) MaxAttempts() int {
	if s == nil {
		return 1
	}
	return s.cfg.MaxAttempts
}

// Session derives the fault plan for one (session key, attempt) pair.
// The derivation routes through fleet.SplitSeed, so it depends only on
// (schedule seed, key, attempt): any worker count, submission order or
// retry interleaving produces the same plan. Each attempt re-draws the
// transient decisions (panics, trace errors, radio faults), so a retry
// is a genuinely fresh try; the abort decision is drawn once per
// session key (attempt 0) because aborts are permanent.
func (s *Schedule) Session(key string, attempt int) *Session {
	if s == nil {
		return nil
	}
	base := fleet.SplitSeed(s.cfg.Seed, "fault/session/"+key, attempt)
	rng := rand.New(rand.NewSource(base))
	f := &Session{cfg: s.cfg, base: base}
	// Fixed draw order — inserting a new decision class must append
	// draws, never reorder them, or every existing fault plan shifts.
	f.Panic = s.cfg.WorkerPanicProb > 0 && rng.Float64() < s.cfg.WorkerPanicProb
	f.AbortFraction = 0.10 + 0.80*rng.Float64()
	// Permanent decisions come from the attempt-0 stream so a retry
	// cannot dodge them.
	abortRng := rng
	if attempt != 0 {
		abortRng = rand.New(rand.NewSource(fleet.SplitSeed(s.cfg.Seed, "fault/session/"+key, 0)))
		abortRng.Float64() // skip the panic draw
		f.AbortFraction = 0.10 + 0.80*abortRng.Float64()
	}
	f.Abort = s.cfg.SessionAbortProb > 0 && abortRng.Float64() < s.cfg.SessionAbortProb
	return f
}

// Session is one session's concrete fault plan. A nil *Session injects
// nothing.
type Session struct {
	cfg  Config
	base int64

	// Abort marks the session for a mid-transfer abort after
	// AbortFraction of its configured duration (a permanent failure).
	Abort bool
	// AbortFraction ∈ [0.10, 0.90] is the fraction of the session that
	// completes before the abort.
	AbortFraction float64
	// Panic marks this attempt's job for an injected panic, exercising
	// the fleet's recover-into-error path.
	Panic bool
}

// RLF returns the radio-link-failure injector config for carrier index
// i, or nil when RLFs are not armed (or the session is nil).
func (f *Session) RLF(i int) *RLF {
	if f == nil || f.cfg.RLFProbPerSlot <= 0 {
		return nil
	}
	return &RLF{
		ProbPerSlot:      f.cfg.RLFProbPerSlot,
		ReestablishSlots: f.cfg.RLFReestablishSlots,
		Seed:             fleet.SplitSeed(f.base, "rlf", i),
	}
}

// Blackout returns the SINR blackout injector config for carrier index
// i, or nil when blackouts are not armed (or the session is nil).
func (f *Session) Blackout(i int) *Blackout {
	if f == nil || f.cfg.BlackoutProbPerSlot <= 0 {
		return nil
	}
	return &Blackout{
		ProbPerSlot:   f.cfg.BlackoutProbPerSlot,
		DurationSlots: f.cfg.BlackoutDurationSlots,
		DepthDB:       f.cfg.BlackoutDepthDB,
		Seed:          fleet.SplitSeed(f.base, "blackout", i),
	}
}

// TraceWriter wraps a trace sink with deterministic write-error
// injection; it returns w unchanged when trace faults are not armed
// (or the session is nil).
func (f *Session) TraceWriter(w ioWriter) ioWriter {
	if f == nil || f.cfg.TraceErrorPerWrite <= 0 {
		return w
	}
	return NewWriter(w, f.cfg.TraceErrorPerWrite, fleet.SplitSeed(f.base, "trace", 0))
}

// RLF configures one carrier's radio-link-failure process; gnb.Carrier
// builds an [RLFState] from it.
type RLF struct {
	ProbPerSlot      float64
	ReestablishSlots int
	Seed             int64
}

// RLFState is the per-carrier RLF process. Not safe for concurrent use.
type RLFState struct {
	rng  *rand.Rand
	prob float64
	// ReestablishSlots is the configured interruption length.
	ReestablishSlots int
}

// NewRLFState builds the process (nil for a nil config).
func NewRLFState(cfg *RLF) *RLFState {
	if cfg == nil || cfg.ProbPerSlot <= 0 {
		return nil
	}
	return &RLFState{
		rng:              rand.New(rand.NewSource(cfg.Seed)),
		prob:             cfg.ProbPerSlot,
		ReestablishSlots: cfg.ReestablishSlots,
	}
}

// Step draws one slot and reports whether a radio-link failure fires.
// Exactly one RNG draw per call, so the process is independent of the
// surrounding simulation's randomness.
func (s *RLFState) Step() bool {
	return s.rng.Float64() < s.prob
}

// Blackout configures one channel's SINR blackout process;
// channel.Channel builds a [BlackoutState] from it.
type Blackout struct {
	ProbPerSlot   float64
	DurationSlots int
	DepthDB       float64
	Seed          int64
}

// BlackoutState is the per-channel blackout process. Not safe for
// concurrent use.
type BlackoutState struct {
	rng      *rand.Rand
	prob     float64
	duration int
	depthDB  float64
	left     int // slots remaining in the open window
}

// NewBlackoutState builds the process (nil for a nil config).
func NewBlackoutState(cfg *Blackout) *BlackoutState {
	if cfg == nil || cfg.ProbPerSlot <= 0 {
		return nil
	}
	return &BlackoutState{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		prob:     cfg.ProbPerSlot,
		duration: cfg.DurationSlots,
		depthDB:  cfg.DepthDB,
	}
}

// Step advances one slot and returns the SINR suppression to apply
// (0 outside windows). While a window is open no RNG draws occur, so a
// blackout's length never perturbs the draw sequence of later windows.
func (s *BlackoutState) Step() (lossDB float64) {
	if s.left > 0 {
		s.left--
		return s.depthDB
	}
	if s.rng.Float64() < s.prob {
		s.left = s.duration - 1
		return s.depthDB
	}
	return 0
}
