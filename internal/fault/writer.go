package fault

import (
	"io"
	"math/rand"
)

// ioWriter aliases io.Writer so fault.go stays import-light.
type ioWriter = io.Writer

// Writer wraps an io.Writer with deterministic write-error injection:
// each Write draws once from the injector's own RNG and fails with
// [ErrInjectedIO] at the configured probability. Once a write fails the
// writer stays failed (a broken sink does not heal), mirroring how a
// real trace sink dies — disk full, device yanked — partway through a
// capture.
type Writer struct {
	w    io.Writer
	rng  *rand.Rand
	prob float64
	err  error
}

// NewWriter builds the injecting writer.
func NewWriter(w io.Writer, prob float64, seed int64) *Writer {
	return &Writer{w: w, rng: rand.New(rand.NewSource(seed)), prob: prob}
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.rng.Float64() < w.prob {
		w.err = ErrInjectedIO
		return 0, w.err
	}
	return w.w.Write(p)
}
