package fault

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func mustSchedule(t *testing.T, cfg Config) *Schedule {
	t.Helper()
	s, err := NewSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The determinism contract: a session plan is a pure function of
// (schedule seed, key, attempt) — re-deriving it gives identical
// decisions and identical injector seeds.
func TestSessionDerivationIsDeterministic(t *testing.T) {
	s := mustSchedule(t, Config{
		RLFProbPerSlot:      1e-3,
		BlackoutProbPerSlot: 1e-3,
		TraceErrorPerWrite:  1e-2,
		SessionAbortProb:    0.5,
		WorkerPanicProb:     0.5,
		Seed:                7,
	})
	for _, key := range []string{"V_Sp/0", "V_Sp/1", "Tmb_US/0"} {
		for attempt := 0; attempt < 3; attempt++ {
			a, b := s.Session(key, attempt), s.Session(key, attempt)
			if a.Abort != b.Abort || a.AbortFraction != b.AbortFraction || a.Panic != b.Panic {
				t.Fatalf("%s attempt %d: plans diverge: %+v vs %+v", key, attempt, a, b)
			}
			if *a.RLF(0) != *b.RLF(0) || *a.Blackout(1) != *b.Blackout(1) {
				t.Fatalf("%s attempt %d: injector configs diverge", key, attempt)
			}
			if a.RLF(0).Seed == a.RLF(1).Seed {
				t.Fatalf("%s: carriers 0 and 1 share an RLF seed", key)
			}
		}
	}
}

// Abort is permanent: every attempt of a session must reach the same
// abort decision (and fraction), or a retry could dodge a fault that
// models the UE losing coverage for good.
func TestAbortDecisionIsAttemptInvariant(t *testing.T) {
	s := mustSchedule(t, Config{SessionAbortProb: 0.5, WorkerPanicProb: 0.3, Seed: 11})
	aborts := 0
	for i := 0; i < 200; i++ {
		key := string(rune('a'+i%26)) + "/" + string(rune('0'+i%10))
		ref := s.Session(key, 0)
		if ref.Abort {
			aborts++
		}
		for attempt := 1; attempt < 4; attempt++ {
			fs := s.Session(key, attempt)
			if fs.Abort != ref.Abort || fs.AbortFraction != ref.AbortFraction {
				t.Fatalf("key %s attempt %d: abort (%v, %g) != attempt 0's (%v, %g)",
					key, attempt, fs.Abort, fs.AbortFraction, ref.Abort, ref.AbortFraction)
			}
		}
	}
	if aborts == 0 || aborts == 200 {
		t.Fatalf("abort rate degenerate: %d/200 at p=0.5", aborts)
	}
}

// Transient decisions (panic) must re-draw per attempt, or retrying a
// panicking session could never succeed.
func TestPanicRedrawsPerAttempt(t *testing.T) {
	s := mustSchedule(t, Config{WorkerPanicProb: 0.5, Seed: 3})
	varied := false
	for i := 0; i < 100 && !varied; i++ {
		key := string(rune('a'+i%26)) + "x" + string(rune('0'+i%10))
		p0 := s.Session(key, 0).Panic
		for attempt := 1; attempt < 4; attempt++ {
			if s.Session(key, attempt).Panic != p0 {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("panic decision never varied across attempts at p=0.5")
	}
}

// A blackout window must hold its configured depth for exactly its
// configured duration (runs may chain back-to-back when the post-window
// draw fires again, so run lengths are multiples of the duration), and
// consume no RNG draws while open — so window length can never perturb
// the timing of later windows.
func TestBlackoutWindowShape(t *testing.T) {
	cfg := &Blackout{ProbPerSlot: 5e-3, DurationSlots: 37, DepthDB: 40, Seed: 13}
	st := NewBlackoutState(cfg)
	inWindow := 0
	runs := 0
	for i := 0; i < 200000; i++ {
		loss := st.Step()
		if loss == 0 {
			if inWindow%cfg.DurationSlots != 0 {
				t.Fatalf("slot %d: blackout run of %d slots is not a multiple of %d", i, inWindow, cfg.DurationSlots)
			}
			inWindow = 0
			continue
		}
		if loss != cfg.DepthDB {
			t.Fatalf("slot %d: loss %g dB, want %g", i, loss, cfg.DepthDB)
		}
		if inWindow == 0 {
			runs++
		}
		inWindow++
	}
	if runs == 0 {
		t.Fatal("no blackout window opened in 200k slots at p=5e-3")
	}
	// Replay must be identical.
	st2 := NewBlackoutState(cfg)
	st3 := NewBlackoutState(cfg)
	for i := 0; i < 10000; i++ {
		if st2.Step() != st3.Step() {
			t.Fatalf("slot %d: blackout replay diverged", i)
		}
	}
}

// The injecting writer fails at its configured rate and stays failed:
// a broken sink does not heal, and nothing further reaches the
// underlying writer.
func TestWriterStickyError(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, 1, 5)
	if _, err := w.Write([]byte("abc")); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("first write: %v, want ErrInjectedIO", err)
	}
	if _, err := w.Write([]byte("def")); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("write after failure: %v, want sticky ErrInjectedIO", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("%d bytes reached the sink after injection", sink.Len())
	}

	// prob 0 through the Session hook: the sink is returned unwrapped.
	s := mustSchedule(t, Config{SessionAbortProb: 0.1})
	fs := s.Session("k/0", 0)
	if got := fs.TraceWriter(&sink); got != &sink {
		t.Fatal("TraceWriter wrapped the sink with trace faults unarmed")
	}
	var nilSession *Session
	if got := nilSession.TraceWriter(&sink); got != &sink {
		t.Fatal("nil session must pass the sink through")
	}
}

// Nil schedules and nil sessions are inert: every accessor returns the
// "inject nothing" value, so the fault path costs exactly one nil check.
func TestNilScheduleIsInert(t *testing.T) {
	var s *Schedule
	if s.MaxAttempts() != 1 {
		t.Fatalf("nil schedule MaxAttempts = %d, want 1", s.MaxAttempts())
	}
	if fs := s.Session("k", 0); fs != nil {
		t.Fatalf("nil schedule produced session %+v", fs)
	}
	var fs *Session
	if fs.RLF(0) != nil || fs.Blackout(0) != nil {
		t.Fatal("nil session produced injector configs")
	}
	if NewRLFState(nil) != nil || NewBlackoutState(nil) != nil {
		t.Fatal("nil injector configs produced live states")
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("rlf=2e-4, reestablish=120, abort=0.25, trace=1e-3, attempts=5, seed=7")
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.RLFProbPerSlot != 2e-4 || cfg.RLFReestablishSlots != 120 ||
		cfg.SessionAbortProb != 0.25 || cfg.TraceErrorPerWrite != 1e-3 ||
		cfg.MaxAttempts != 5 || cfg.Seed != 7 {
		t.Fatalf("spec parsed to %+v", cfg)
	}
	if cfg.BlackoutDurationSlots != 400 || cfg.BlackoutDepthDB != 40 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}

	if s, err := ParseSpec("  "); err != nil || s != nil {
		t.Fatalf("blank spec: (%v, %v), want (nil, nil)", s, err)
	}
	for _, bad := range []string{
		"rlf",                     // not key=value
		"bogus=1",                 // unknown key
		"rlf=abc",                 // bad float
		"attempts=x",              // bad int
		"seed=9",                  // arms nothing
		"rlf=1.5",                 // probability out of range
		"abort=-0.1",              // probability out of range
		"rlf=1e-4,reestablish=-1", // bad duration
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// Every rejection must say what is wrong with the spec the user typed,
// not merely that something is: the message is the CLI's only feedback.
func TestParseSpecErrorMessages(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"bogus=1", `unknown spec key "bogus"`},
		{"rlf=0.2,unknownfault=1", `unknown spec key "unknownfault"`},
		// Negative (and >1) rates must cite the [0,1] range and the
		// offending class — before the ParseSpec validation reorder they
		// fell through Active() to a misleading "arms no fault class".
		{"rlf=-0.1", "rlf probability -0.1 outside [0,1]"},
		{"abort=-1", "abort probability -1 outside [0,1]"},
		{"panic=2", "panic probability 2 outside [0,1]"},
		{"trace=1.01", "trace probability 1.01 outside [0,1]"},
		// A spec that parses but arms nothing must list what would arm it.
		{"seed=9", "arms no fault class (set at least one of rlf, blackout, trace, abort, panic)"},
		{"attempts=4", "arms no fault class"},
		{"rlf", `entry "rlf" is not key=value`},
		{"rlf=1e-4,attempts=-2", "max attempts -2 < 1"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSpec(%q) = %q, want it to mention %q", c.spec, err, c.want)
		}
	}

	// The empty spec is not an error: it is the documented "no
	// injection" setting, distinct from a spec that arms nothing. A spec
	// that is only separators parses to zero entries and is diagnosed as
	// arming nothing, not silently treated as empty.
	for _, empty := range []string{"", "  "} {
		s, err := ParseSpec(empty)
		if err != nil || s != nil {
			t.Errorf("ParseSpec(%q) = (%v, %v), want (nil, nil)", empty, s, err)
		}
	}
	if _, err := ParseSpec(" , "); err == nil || !strings.Contains(err.Error(), "arms no fault class") {
		t.Errorf("ParseSpec(\" , \") = %v, want arms-no-fault-class error", err)
	}
}
