#!/usr/bin/env bash
# Measure total statement coverage and (re)generate or check the
# committed baseline.
#
#   scripts/coverage.sh           print per-function coverage and the total
#   scripts/coverage.sh baseline  rewrite COVERAGE_baseline.txt from a fresh run
#   scripts/coverage.sh check     compare a fresh run against COVERAGE_baseline.txt
#                                 (fails when the total drops more than
#                                 COVERAGE_SLACK points, default 0.5)
#
# The baseline is a ratchet, not a target: it only moves up (or down,
# deliberately, with `baseline`) by commit. Coverage percentages wobble a
# little as code is added, so the check allows a small slack rather than
# demanding monotonicity to the decimal.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=COVERAGE_baseline.txt
SLACK="${COVERAGE_SLACK:-0.5}"
# COVERAGE_PROFILE, when set, keeps the merged profile at that path (for
# CI artifact upload); otherwise a temp file is used and removed.
PROFILE="${COVERAGE_PROFILE:-}"

total() {
    local profile="$1"
    go tool cover -func="$profile" | awk '/^total:/ {sub(/%$/, "", $3); print $3}'
}

run_cover() {
    local profile="$1"
    go test -count=1 -coverprofile="$profile" ./... > /dev/null
}

case "${1:-run}" in
run)
    tmp="${PROFILE:-$(mktemp)}"
    [ -n "$PROFILE" ] || trap 'rm -f "$tmp"' EXIT
    run_cover "$tmp"
    go tool cover -func="$tmp"
    ;;
baseline)
    tmp="${PROFILE:-$(mktemp)}"
    [ -n "$PROFILE" ] || trap 'rm -f "$tmp"' EXIT
    run_cover "$tmp"
    total "$tmp" > "$BASELINE"
    echo "wrote $BASELINE: $(cat "$BASELINE")%"
    ;;
check)
    tmp="${PROFILE:-$(mktemp)}"
    [ -n "$PROFILE" ] || trap 'rm -f "$tmp"' EXIT
    run_cover "$tmp"
    new="$(total "$tmp")"
    old="$(cat "$BASELINE")"
    echo "total coverage: ${new}% (baseline ${old}%, slack ${SLACK})"
    awk -v new="$new" -v old="$old" -v slack="$SLACK" 'BEGIN {
        if (new + slack < old) {
            printf "coverage dropped: %.1f%% < baseline %.1f%% - %.1f\n", new, old, slack
            exit 1
        }
    }'
    ;;
*)
    echo "usage: scripts/coverage.sh [run|baseline|check]" >&2
    exit 2
    ;;
esac
