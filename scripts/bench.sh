#!/usr/bin/env bash
# Run the slot-path micro-benchmarks and (re)generate or check the
# committed baseline.
#
#   scripts/bench.sh              print bench text to stdout
#   scripts/bench.sh baseline     rewrite BENCH_baseline.json from a fresh run
#   scripts/bench.sh check        compare a fresh run against BENCH_baseline.json
#                                 (fails on >10% regression of ns/op or any
#                                 custom ns/* sub-metric, or any allocs/op
#                                 increase)
#
# The benchmark set is the per-slot hot path: channel fading step, TBS
# lookup (direct and memoized), the full carrier scheduler step, the
# multi-UE population curve (batched engine at 4/16/64/256 UEs,
# reporting ns/UE-slot), the aggregated link step, the columnar
# trace pipeline (block encode on the write side, projected block
# decode on the scan side, reporting ns/record), and one Quick-scale
# scenario pack end to end (the scenario-runner smoke). Use -count via
# BENCH_COUNT (default 5) — best-of-N repeated runs is what makes the
# 10% gate usable on noisy machines.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-5}"
FILTER='BenchmarkChannelStep|BenchmarkTBS$|BenchmarkTBSCached|BenchmarkCarrierStep|BenchmarkCellMultiUE|BenchmarkLinkStep|BenchmarkBlockScan|BenchmarkBlockWrite|BenchmarkScenarioCampaign'
PKGS="./internal/channel ./internal/phy ./internal/gnb ./internal/xcol ./internal/scenario ."

run_bench() {
    # -benchtime keeps a 5x run under ~2 minutes while giving stable numbers.
    go test -run '^$' -bench "$FILTER" -benchmem -count "$COUNT" \
        -benchtime "${BENCH_TIME:-0.5s}" $PKGS
}

case "${1:-run}" in
run)
    run_bench
    ;;
baseline)
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    run_bench | tee "$tmp"
    go run ./cmd/benchgate wrap -o BENCH_baseline.json "$tmp"
    echo "wrote BENCH_baseline.json"
    ;;
check)
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    run_bench | tee "$tmp"
    go run ./cmd/benchgate compare -max-regress "${MAX_REGRESS:-0.10}" BENCH_baseline.json "$tmp"
    ;;
*)
    echo "usage: scripts/bench.sh [run|baseline|check]" >&2
    exit 2
    ;;
esac
