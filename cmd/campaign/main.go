// Command campaign runs a measurement campaign across the operator registry
// and writes one XCAL-style trace per session, reproducing the data
// collection methodology of §2.
//
// Usage:
//
//	campaign [-out DIR] [-duration 10s] [-seed N] [-ops V_Sp,Tmb_US]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	out := flag.String("out", "traces", "directory for .xcal traces")
	duration := flag.Duration("duration", 10*time.Second, "bulk-transfer duration per operator")
	seed := flag.Int64("seed", 2024, "simulation seed")
	ops := flag.String("ops", "", "comma-separated operator acronyms (default: all mid-band)")
	flag.Parse()

	var selected []operators.Operator
	if *ops != "" {
		for _, acr := range strings.Split(*ops, ",") {
			op, err := operators.ByAcronym(strings.TrimSpace(acr))
			if err != nil {
				log.Fatal(err)
			}
			selected = append(selected, op)
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	stats, err := core.RunCampaign(core.CampaignConfig{
		Operators:       selected,
		SessionDuration: *duration,
		TraceDir:        *out,
		Seed:            *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	report.Table1(os.Stdout, stats)
	fmt.Printf("\n%d traces written to %s\n", stats.TraceFiles, *out)
}
