// Command campaign runs a measurement campaign across the operator registry
// and writes one XCAL-style trace per session, reproducing the data
// collection methodology of §2. Sessions fan out over the fleet worker
// pool; -parallel bounds the workers and the results are identical for
// any value because every session seed derives from the job key alone.
//
// Usage:
//
//	campaign [-out DIR] [-duration 10s] [-seed N] [-ops V_Sp,Tmb_US] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	out := flag.String("out", "traces", "directory for .xcal traces")
	duration := flag.Duration("duration", 10*time.Second, "bulk-transfer duration per operator")
	seed := flag.Int64("seed", 2024, "simulation seed")
	ops := flag.String("ops", "", "comma-separated operator acronyms (default: all mid-band)")
	parallel := flag.Int("parallel", 0, "concurrent sessions (default: GOMAXPROCS; 1 = serial)")
	flag.Parse()

	var selected []operators.Operator
	if *ops != "" {
		for _, acr := range strings.Split(*ops, ",") {
			op, err := operators.ByAcronym(strings.TrimSpace(acr))
			if err != nil {
				log.Fatal(err)
			}
			selected = append(selected, op)
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	var m fleet.Metrics
	t0 := time.Now()
	stats, err := core.RunCampaign(core.CampaignConfig{
		Operators:       selected,
		SessionDuration: *duration,
		TraceDir:        *out,
		Seed:            *seed,
		Workers:         *parallel,
		Metrics:         &m,
		Progress: func(done, total int, key string) {
			fmt.Fprintf(os.Stderr, "campaign: [%d/%d] %s (%.1fs)\n", done, total, key, time.Since(t0).Seconds())
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0).Seconds()
	slots := float64(m.SlotsSimulated.Load())
	fmt.Fprintf(os.Stderr, "campaign: %d sessions, %.2fM slots (%.2fM slots/s), %.1f KB traces, %.1fs wall\n",
		m.JobsDone.Load(), slots/1e6, slots/1e6/elapsed, float64(m.TraceBytes.Load())/1e3, elapsed)
	report.Table1(os.Stdout, stats)
	fmt.Printf("\n%d traces written to %s\n", stats.TraceFiles, *out)
}
