// Command campaign runs a measurement campaign across the operator registry
// and writes one trace per session, reproducing the data collection
// methodology of §2. Traces default to the columnar .xcol container
// (streamable with bounded memory; see docs/ARCHITECTURE.md "Trace
// pipeline"); -trace-format xcal selects the row container. Sessions fan out over the fleet worker
// pool; -parallel bounds the workers and the results are identical for
// any value because every session seed derives from the job key alone.
//
// Observability: -obs-listen serves live /metrics (Prometheus text),
// /debug/pprof and /debug/vars while the campaign runs; -progress prints
// periodic slots/sec + ETA snapshots to stderr. Every run writes a
// RunManifest (manifest.json) next to the traces recording the config
// digest, seed, toolchain and run accounting, so any trace can be traced
// back to the exact run that produced it. None of this feeds back into
// the simulation: aggregates and traces are byte-identical with
// observability on or off.
//
// Fault injection: -faults arms a deterministic fault schedule
// (radio-link failures, SINR blackouts, trace I/O errors, session aborts,
// worker panics — see internal/fault). The campaign then degrades
// gracefully: transient failures retry with simulated backoff and
// sessions that still fail are recorded as failure provenance in the
// manifest instead of failing the run. Without -faults the campaign is
// byte-identical to one built before fault injection existed.
//
// Usage:
//
//	campaign [-out DIR] [-duration 10s] [-seed N] [-ops V_Sp,Tmb_US]
//	         [-parallel N] [-obs-listen :9090] [-progress 2s]
//	         [-faults rlf=2e-4,abort=0.05,trace=1e-3,seed=7]
//	         [-ues-per-cell 4] [-cell-policy pf]
//
// Multi-UE contention: -ues-per-cell N (N > 1) appends a shared-cell arm
// after the per-session measurements — each operator's primary carrier
// runs as one cell with N contending UEs under -cell-policy (pf, rr, mt
// or eq), reporting per-UE goodput shares and Jain fairness. The default
// (1) is byte-identical to the legacy single-UE campaign, including the
// manifest's config digest.
//
// Scenarios: -scenario runs a declarative scenario instead of the
// flag-driven bulk campaign — a shipped pack name (see `scenario list`)
// or a spec file path. The spec owns the workload (traffic, route, band
// plan, population, faults, sessions), so the workload-shaping flags
// -ops, -duration, -faults, -ues-per-cell and -cell-policy are rejected
// alongside it; run-level flags (-seed, -parallel, -out, -obs-listen,
// -progress, profiles) compose as usual. -quick shrinks the scenario to
// CI scale first. The manifest records the scenario name and canonical
// digest, and the report is the scenario's KPI table.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/fault"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/gnb"
	"github.com/midband5g/midband/internal/obs"
	"github.com/midband5g/midband/internal/operators"
	"github.com/midband5g/midband/internal/report"
	"github.com/midband5g/midband/internal/scenario"
)

// manifestConfig is the digested run configuration: exactly the inputs
// that determine campaign outputs. Workers is deliberately excluded —
// outputs are byte-identical for any worker count — and recorded on the
// manifest's top level instead.
type manifestConfig struct {
	Operators       []string `json:"operators"`
	DurationSeconds float64  `json:"duration_seconds"`
	Seed            int64    `json:"seed"`
	// Faults is the -faults spec verbatim; omitted when empty so
	// fault-free manifests keep their historical config digest.
	Faults string `json:"faults,omitempty"`
	// UEsPerCell and CellPolicy describe the multi-UE contention arm;
	// both are omitted for single-UE campaigns (-ues-per-cell <= 1) so
	// legacy manifests keep their historical config digest.
	UEsPerCell int    `json:"ues_per_cell,omitempty"`
	CellPolicy string `json:"cell_policy,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	out := flag.String("out", "traces", "directory for traces and manifest.json")
	traceFormat := flag.String("trace-format", "xcol", "trace container: xcol (columnar blocks, streaming scans) or xcal (row frames)")
	duration := flag.Duration("duration", 10*time.Second, "bulk-transfer duration per operator")
	seed := flag.Int64("seed", 2024, "simulation seed")
	ops := flag.String("ops", "", "comma-separated operator acronyms (default: all mid-band)")
	parallel := flag.Int("parallel", 0, "concurrent sessions (default: GOMAXPROCS; 1 = serial)")
	obsListen := flag.String("obs-listen", "", "serve /metrics, /debug/pprof and /debug/vars on this address during the run (\":0\" picks a port)")
	progress := flag.Duration("progress", 0, "interval between stderr progress snapshots (0 disables)")
	faults := flag.String("faults", "", "fault-injection spec, e.g. rlf=2e-4,blackout=1e-4,trace=1e-3,abort=0.05,panic=0.02,attempts=3,seed=7 (empty disables)")
	uesPerCell := flag.Int("ues-per-cell", 1, "attached UEs contending per cell; >1 appends a multi-UE contention arm (see docs/SIMULATION-MODEL.md)")
	cellPolicy := flag.String("cell-policy", "pf", "multi-UE scheduler: pf, rr, mt or eq (used with -ues-per-cell > 1)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	scenarioArg := flag.String("scenario", "", "run a declarative scenario: a shipped pack name or a spec file path (conflicts with the workload-shaping flags; see doc)")
	quick := flag.Bool("quick", false, "shrink the -scenario to CI scale (sessions, durations, probes) before running")
	flag.Parse()
	if *traceFormat != "xcal" && *traceFormat != "xcol" {
		log.Fatalf("unknown -trace-format %q (want xcal or xcol)", *traceFormat)
	}
	if *scenarioArg != "" {
		if conflicts := conflictingFlags(flag.Visit); len(conflicts) > 0 {
			log.Fatalf("-scenario provides the workload; the spec's traffic/band_plan/population/faults/sessions sections own %s — drop the flag(s) or edit the spec",
				strings.Join(conflicts, ", "))
		}
	} else if *quick {
		log.Fatal("-quick only applies to -scenario runs")
	}

	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	var selected []operators.Operator
	if *ops != "" {
		for _, acr := range strings.Split(*ops, ",") {
			op, err := operators.ByAcronym(strings.TrimSpace(acr))
			if err != nil {
				log.Fatal(err)
			}
			selected = append(selected, op)
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	var m fleet.Metrics
	t0 := time.Now() //detlint:allow walltime CLI wall-cost accounting for the manifest, never simulation input
	if *obsListen != "" || *progress > 0 {
		obs.SetEnabled(true)
	}
	if *obsListen != "" {
		reg := obs.Default()
		reg.GaugeFunc("fleet_jobs_done", func() float64 { return float64(m.JobsDone.Load()) })
		reg.GaugeFunc("fleet_jobs_total", func() float64 { return float64(m.JobsTotal.Load()) })
		reg.GaugeFunc("fleet_slots_simulated", func() float64 { return float64(m.SlotsSimulated.Load()) })
		reg.GaugeFunc("fleet_trace_bytes", func() float64 { return float64(m.TraceBytes.Load()) })
		reg.GaugeFunc("run_elapsed_seconds", func() float64 { return time.Since(t0).Seconds() }) //detlint:allow walltime live /metrics gauge, observability only
		srv, err := obs.Serve(*obsListen, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "campaign: obs endpoint on http://%s (/metrics /debug/pprof /debug/vars)\n", srv.Addr())
	}
	if *progress > 0 {
		stop := obs.StartProgress(obs.ProgressConfig{
			W:        os.Stderr,
			Interval: *progress,
			Prefix:   "campaign",
			Done:     m.JobsDone.Load,
			Total:    m.JobsTotal.Load,
			Slots:    m.SlotsSimulated.Load,
		})
		defer stop()
	}

	if *scenarioArg != "" {
		runScenario(*scenarioArg, *quick, *out, *traceFormat, *seed, *parallel, &m, t0)
		return
	}

	opNames := make([]string, 0, len(selected))
	for _, op := range selected {
		opNames = append(opNames, op.Acronym)
	}
	if len(opNames) == 0 {
		for _, op := range operators.MidBand() {
			opNames = append(opNames, op.Acronym)
		}
	}
	sched, err := fault.ParseSpec(*faults)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := gnb.ParsePolicy(*cellPolicy)
	if err != nil {
		log.Fatal(err)
	}
	mc := manifestConfig{
		Operators:       opNames,
		DurationSeconds: duration.Seconds(),
		Seed:            *seed,
		Faults:          *faults,
	}
	if *uesPerCell > 1 {
		mc.UEsPerCell = *uesPerCell
		mc.CellPolicy = policy.String()
	}
	manifest, err := obs.NewManifest("campaign", mc)
	if err != nil {
		log.Fatal(err)
	}
	manifest.Seed = *seed
	manifest.Workers = fleet.EffectiveWorkers(*parallel)

	stats, err := core.RunCampaign(core.CampaignConfig{
		Operators:       selected,
		SessionDuration: *duration,
		TraceDir:        *out,
		TraceFormat:     *traceFormat,
		Seed:            *seed,
		Workers:         *parallel,
		Faults:          sched,
		UEsPerCell:      *uesPerCell,
		CellPolicy:      policy,
		Metrics:         &m,
		Progress: func(done, total int, key string) {
			fmt.Fprintf(os.Stderr, "campaign: [%d/%d] %s (%.1fs)\n", done, total, key, time.Since(t0).Seconds()) //detlint:allow walltime stderr progress line, not part of campaign output
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0).Seconds() //detlint:allow walltime manifest wall-cost field, excluded from the config digest

	manifest.WallSeconds = elapsed
	manifest.JobsDone = m.JobsDone.Load()
	manifest.SlotsSimulated = m.SlotsSimulated.Load()
	manifest.TraceBytes = m.TraceBytes.Load()
	manifest.Retries = m.Retries.Load()
	manifest.BackoffSimNs = int64(stats.BackoffSim)
	for _, f := range stats.Failures {
		manifest.Failures = append(manifest.Failures, obs.SessionFailure{
			Key:      f.Key,
			Operator: f.Operator,
			Session:  f.Session,
			Attempts: f.Attempts,
			Stage:    f.Stage,
			Err:      f.Err,
		})
		fmt.Fprintf(os.Stderr, "campaign: session %s failed after %d attempt(s): %s (%s)\n",
			f.Key, f.Attempts, f.Stage, f.Err)
	}
	for _, s := range stats.Sessions {
		if s.TracePath != "" {
			manifest.Outputs = append(manifest.Outputs, filepath.Base(s.TracePath))
		}
	}
	manifestPath := filepath.Join(*out, "manifest.json")
	if err := obs.WriteManifest(manifestPath, manifest); err != nil {
		log.Fatal(err)
	}

	if n := len(stats.Failures); n > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d session(s) lost to injected faults (%d retries, %v simulated backoff)\n",
			n, m.Retries.Load(), stats.BackoffSim)
	}
	slots := float64(m.SlotsSimulated.Load())
	fmt.Fprintf(os.Stderr, "campaign: %d sessions, %.2fM slots (%.2fM slots/s), %.1f KB traces, %.1fs wall\n",
		m.JobsDone.Load(), slots/1e6, slots/1e6/elapsed, float64(m.TraceBytes.Load())/1e3, elapsed)
	report.Table1(os.Stdout, stats)
	report.MultiUE(os.Stdout, stats.MultiUE)
	fmt.Printf("\n%d traces written to %s (manifest: %s)\n", stats.TraceFiles, *out, manifestPath)
}

// scenarioConflictFlags are the workload-shaping flags a -scenario spec
// owns: each has a spec section that replaces it, so setting both is a
// contradiction, not an override.
var scenarioConflictFlags = []string{"ops", "duration", "faults", "ues-per-cell", "cell-policy"}

// conflictingFlags returns the workload-shaping flags the user set, in
// scenarioConflictFlags order, given a flag.Visit-style iterator over
// the flags explicitly present on the command line.
func conflictingFlags(visit func(func(*flag.Flag))) []string {
	set := map[string]bool{}
	visit(func(f *flag.Flag) { set[f.Name] = true })
	var out []string
	for _, name := range scenarioConflictFlags {
		if set[name] {
			out = append(out, "-"+name)
		}
	}
	return out
}

// loadScenario resolves the -scenario argument: a shipped pack name
// first, then a spec file path through the same strict decoder.
func loadScenario(arg string) (*scenario.Spec, error) {
	if spec, err := scenario.Pack(arg); err == nil {
		return spec, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("-scenario %q is neither a shipped pack (%s) nor a readable spec file: %w",
			arg, strings.Join(scenario.PackNames(), ", "), err)
	}
	return scenario.Decode(data)
}

// scenarioManifestConfig is the digested configuration of a -scenario
// run: the canonical spec plus the run-level inputs that shape outputs.
type scenarioManifestConfig struct {
	Scenario json.RawMessage `json:"scenario"`
	Seed     int64           `json:"seed"`
	Quick    bool            `json:"quick,omitempty"`
}

// runScenario executes the -scenario path: resolve the spec, run it,
// write the manifest (stamped with the scenario name and digest) and
// print the scenario report.
func runScenario(arg string, quick bool, out, traceFormat string, seed int64, parallel int, m *fleet.Metrics, t0 time.Time) {
	spec, err := loadScenario(arg)
	if err != nil {
		log.Fatal(err)
	}
	if quick {
		spec = spec.QuickScale()
	}
	canonical, err := spec.Canonical()
	if err != nil {
		log.Fatal(err)
	}
	manifest, err := obs.NewManifest("campaign", scenarioManifestConfig{
		Scenario: canonical,
		Seed:     seed,
		Quick:    quick,
	})
	if err != nil {
		log.Fatal(err)
	}
	manifest.Seed = seed
	manifest.Workers = fleet.EffectiveWorkers(parallel)
	if err := spec.StampManifest(manifest); err != nil {
		log.Fatal(err)
	}

	res, err := scenario.Run(context.Background(), spec, scenario.Options{
		Seed:        seed,
		Workers:     parallel,
		Metrics:     m,
		TraceDir:    out,
		TraceFormat: traceFormat,
		Progress: func(done, total int, key string) {
			fmt.Fprintf(os.Stderr, "campaign: [%d/%d] %s (%.1fs)\n", done, total, key, time.Since(t0).Seconds()) //detlint:allow walltime stderr progress line, not part of campaign output
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0).Seconds() //detlint:allow walltime manifest wall-cost field, excluded from the config digest

	manifest.WallSeconds = elapsed
	manifest.JobsDone = m.JobsDone.Load()
	manifest.SlotsSimulated = m.SlotsSimulated.Load()
	manifest.TraceBytes = m.TraceBytes.Load()
	manifest.Retries = m.Retries.Load()
	manifest.BackoffSimNs = int64(res.BackoffSim)
	failures := res.Failures
	if res.Bulk != nil {
		failures = res.Bulk.Failures
	}
	for _, f := range failures {
		manifest.Failures = append(manifest.Failures, obs.SessionFailure{
			Key:      f.Key,
			Operator: f.Operator,
			Session:  f.Session,
			Attempts: f.Attempts,
			Stage:    f.Stage,
			Err:      f.Err,
		})
		fmt.Fprintf(os.Stderr, "campaign: session %s failed after %d attempt(s): %s (%s)\n",
			f.Key, f.Attempts, f.Stage, f.Err)
	}
	if res.Bulk != nil {
		for _, s := range res.Bulk.Sessions {
			if s.TracePath != "" {
				manifest.Outputs = append(manifest.Outputs, filepath.Base(s.TracePath))
			}
		}
	}
	manifestPath := filepath.Join(out, "manifest.json")
	if err := obs.WriteManifest(manifestPath, manifest); err != nil {
		log.Fatal(err)
	}

	slots := float64(m.SlotsSimulated.Load())
	fmt.Fprintf(os.Stderr, "campaign: scenario %s (%d jobs, %.2fM slots, %.1fs wall)\n",
		res.Name, m.JobsDone.Load(), slots/1e6, elapsed)
	report.Scenario(os.Stdout, res)
	fmt.Printf("\nmanifest: %s\n", manifestPath)
}
