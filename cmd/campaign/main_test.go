package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/obs"
)

// conflictingFlags must flag exactly the workload-shaping flags the
// user set, in a stable order, and ignore run-level flags (seed,
// parallel, out, ...) that compose with a scenario spec.
func TestConflictingFlags(t *testing.T) {
	cases := []struct {
		args []string
		want []string
	}{
		{nil, nil},
		{[]string{"-seed", "7", "-parallel", "4", "-out", "x"}, nil},
		{[]string{"-ops", "V_Sp"}, []string{"-ops"}},
		{[]string{"-faults", "rlf=1e-4", "-duration", "2s"}, []string{"-duration", "-faults"}},
		{
			[]string{"-cell-policy", "rr", "-ues-per-cell", "4", "-ops", "V_Sp", "-seed", "9"},
			[]string{"-ops", "-ues-per-cell", "-cell-policy"},
		},
	}
	for _, c := range cases {
		fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
		fs.String("ops", "", "")
		fs.Duration("duration", 0, "")
		fs.String("faults", "", "")
		fs.Int("ues-per-cell", 1, "")
		fs.String("cell-policy", "", "")
		fs.Int64("seed", 2024, "")
		fs.Int("parallel", 1, "")
		fs.String("out", "", "")
		if err := fs.Parse(c.args); err != nil {
			t.Fatalf("parse %v: %v", c.args, err)
		}
		if got := conflictingFlags(fs.Visit); !reflect.DeepEqual(got, c.want) {
			t.Errorf("conflictingFlags(%v) = %v, want %v", c.args, got, c.want)
		}
	}
}

// loadScenario resolves pack names before file paths, and its failure
// message lists the shipped packs — the user's menu.
func TestLoadScenario(t *testing.T) {
	s, err := loadScenario("voip")
	if err != nil || s.Name != "voip" {
		t.Fatalf("loadScenario(voip) = (%v, %v)", s, err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	canonical, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, canonical, 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := loadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFile, s) {
		t.Error("spec file decoded differently from the pack it was written from")
	}

	if _, err := loadScenario("no-such-thing"); err == nil || !strings.Contains(err.Error(), "voip") {
		t.Errorf("unknown arg error %v must list the shipped packs", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema": 1, "bogus": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadScenario(bad); err == nil {
		t.Error("invalid spec file accepted")
	}
}

// runScenario end to end at quick scale: the manifest lands in -out,
// stamped with the scenario name and digest.
func TestRunScenarioWritesManifest(t *testing.T) {
	out := t.TempDir()
	var m fleet.Metrics
	runScenario("voip", true, out, "xcol", 2024, 2, &m, time.Now())

	data, err := os.ReadFile(filepath.Join(out, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var manifest obs.RunManifest
	if err := json.Unmarshal(data, &manifest); err != nil {
		t.Fatal(err)
	}
	if manifest.Scenario != "voip" || len(manifest.ScenarioDigest) != 64 {
		t.Errorf("manifest stamped as (%q, %q), want the pack name and a SHA-256 digest", manifest.Scenario, manifest.ScenarioDigest)
	}
	if manifest.Seed != 2024 || manifest.JobsDone == 0 {
		t.Errorf("manifest accounting: seed=%d jobs=%d", manifest.Seed, manifest.JobsDone)
	}
}
