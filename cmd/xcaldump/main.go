// Command xcaldump inspects XCAL-style trace files: it prints the session
// metadata, the channel configuration recovered from the captured signaling
// (the Appendix 10.1 procedure), and aggregate KPI statistics.
//
// Usage:
//
//	xcaldump [-records N] trace.xcal...
package main

import (
	"flag"
	"fmt"
	"io"
	"log"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/config"
	"github.com/midband5g/midband/internal/xcal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xcaldump: ")
	showRecords := flag.Int("records", 0, "print the first N KPI records")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: xcaldump [-records N] trace.xcal...")
	}
	for _, path := range flag.Args() {
		if err := dump(path, *showRecords); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
	}
}

func dump(path string, showRecords int) error {
	// Pass 1: configuration extraction from signaling.
	r, f, err := xcal.OpenFile(path)
	if err != nil {
		return err
	}
	ex, err := config.Extract(r)
	f.Close()
	if err != nil {
		return err
	}
	meta := ex.Meta
	fmt.Printf("%s\n  operator=%s country=%s city=%s scenario=%s slot=%v\n",
		path, meta.Operator, meta.Country, meta.City, meta.Scenario, meta.SlotDuration)
	for _, c := range ex.Carriers {
		fmt.Printf("  cell %d: %s %d MHz (N_RB %d, %d kHz, %s",
			c.CellID, c.Band, c.BandwidthMHz, c.NRB, c.SCSkHz, c.Duplex)
		if c.TDDPattern != "" {
			fmt.Printf(" %s", c.TDDPattern)
		}
		fmt.Printf(") layers=%d table=%d dci1_1=%.0f%%", c.MaxMIMOLayers, c.MCSTable, 100*c.DCI11Share)
		if c.Note != "" {
			fmt.Printf("  [!] %s", c.Note)
		}
		fmt.Println()
	}

	// Pass 2: KPI statistics.
	r, f, err = xcal.OpenFile(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var dlBits, ulBits float64
	var sinr, rsrq, mcs, rank []float64
	var records, printed int
	minT, maxT := -1.0, 0.0
	for {
		ft, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if ft != xcal.FrameKPI {
			continue
		}
		k := &r.KPI
		records++
		if printed < showRecords {
			printed++
			fmt.Printf("  #%d slot=%d %s/%s cqi=%d mcs=%d(t%d) rank=%d rbs=%d tbs=%d ack=%v sinr=%.1f\n",
				printed, k.Slot, k.RAT, k.Dir, k.CQI, k.MCS, k.MCSTable, k.Rank, k.RBs, k.TBSBits, k.ACK, k.SINRdB)
		}
		if t := k.Time.Seconds(); true {
			if minT < 0 || t < minT {
				minT = t
			}
			if t > maxT {
				maxT = t
			}
		}
		switch k.Dir {
		case xcal.DL:
			dlBits += float64(k.DeliveredBits)
		case xcal.UL:
			ulBits += float64(k.DeliveredBits)
		}
		if k.RAT == xcal.NR && k.Carrier == 0 {
			sinr = append(sinr, float64(k.SINRdB))
			rsrq = append(rsrq, float64(k.RSRQdB))
			if k.Dir == xcal.DL && k.RBs > 0 {
				mcs = append(mcs, float64(k.MCS))
				rank = append(rank, float64(k.Rank))
			}
		}
	}
	if span := maxT - minT; span > 0 {
		fmt.Printf("  records=%d span=%.1fs DL=%.1f Mbps UL=%.1f Mbps\n",
			records, span, dlBits/span/1e6, ulBits/span/1e6)
	}
	if len(sinr) > 0 {
		fmt.Printf("  PCell: SINR %s\n         RSRQ %s\n",
			analysis.Summarize(sinr), analysis.Summarize(rsrq))
	}
	if len(mcs) > 1 {
		vm, _ := analysis.Variability(mcs, 256)
		vr, _ := analysis.Variability(rank, 256)
		fmt.Printf("  V(128ms): MCS %.3f  MIMO %.3f\n", vm, vr)
	}
	return nil
}
