// Command xcaldump inspects trace files in either container: the row
// XCAL-style format (.xcal) or the columnar block format (.xcol). The
// container is auto-detected from the magic bytes, never the file name.
// It prints the session metadata, the channel configuration recovered
// from the captured signaling (the Appendix 10.1 procedure), and
// aggregate KPI statistics — streamed through one-pass mergeable
// aggregates for columnar traces, so dumping never loads a whole trace.
//
// Usage:
//
//	xcaldump [-records N] [-blocks] trace...
//	xcaldump -convert DST SRC
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"

	"github.com/midband5g/midband/internal/analysis"
	"github.com/midband5g/midband/internal/config"
	"github.com/midband5g/midband/internal/report"
	"github.com/midband5g/midband/internal/xcal"
	"github.com/midband5g/midband/internal/xcol"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xcaldump: ")
	showRecords := flag.Int("records", 0, "print the first N KPI records")
	showBlocks := flag.Bool("blocks", false, "list the block index of columnar traces")
	convert := flag.String("convert", "", "convert the input trace into this path (direction chosen by magic: .xcal ↔ .xcol)")
	flag.Parse()
	if *convert != "" {
		if flag.NArg() != 1 {
			log.Fatal("usage: xcaldump -convert DST SRC")
		}
		dir, n, err := xcol.ConvertFile(flag.Arg(0), *convert)
		if err != nil {
			log.Fatalf("%s: %v", flag.Arg(0), err)
		}
		fmt.Printf("%s: %s, %d KPI records -> %s\n", flag.Arg(0), dir, n, *convert)
		return
	}
	if flag.NArg() == 0 {
		log.Fatal("usage: xcaldump [-records N] [-blocks] trace...")
	}
	for _, path := range flag.Args() {
		format, err := xcol.DetectFormat(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if format == "xcol" {
			err = dumpCol(path, *showRecords, *showBlocks)
		} else {
			err = dumpRow(path, *showRecords)
		}
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
	}
}

// printExtraction renders the recovered channel configuration.
func printExtraction(path string, ex *config.Extraction) {
	meta := ex.Meta
	fmt.Printf("%s\n  operator=%s country=%s city=%s scenario=%s slot=%v\n",
		path, meta.Operator, meta.Country, meta.City, meta.Scenario, meta.SlotDuration)
	for _, c := range ex.Carriers {
		fmt.Printf("  cell %d: %s %d MHz (N_RB %d, %d kHz, %s",
			c.CellID, c.Band, c.BandwidthMHz, c.NRB, c.SCSkHz, c.Duplex)
		if c.TDDPattern != "" {
			fmt.Printf(" %s", c.TDDPattern)
		}
		fmt.Printf(") layers=%d table=%d dci1_1=%.0f%%", c.MaxMIMOLayers, c.MCSTable, 100*c.DCI11Share)
		if c.Note != "" {
			fmt.Printf("  [!] %s", c.Note)
		}
		fmt.Println()
	}
}

// kpiStats is the streaming KPI reduction both dump paths share.
type kpiStats struct {
	dlBits, ulBits float64
	records        int
	minT, maxT     float64
	sinr, rsrq     analysis.Accum
	sinrS, rsrqS   *analysis.Sketch
	mcs, rank      []float64
}

func newKPIStats() *kpiStats {
	return &kpiStats{minT: -1, sinrS: analysis.NewSketch(), rsrqS: analysis.NewSketch()}
}

func (st *kpiStats) add(k *xcal.SlotKPI) {
	st.records++
	if t := k.Time.Seconds(); true {
		if st.minT < 0 || t < st.minT {
			st.minT = t
		}
		if t > st.maxT {
			st.maxT = t
		}
	}
	switch k.Dir {
	case xcal.DL:
		st.dlBits += float64(k.DeliveredBits)
	case xcal.UL:
		st.ulBits += float64(k.DeliveredBits)
	}
	if k.RAT == xcal.NR && k.Carrier == 0 {
		st.sinr.Add(float64(k.SINRdB))
		st.sinrS.Add(float64(k.SINRdB))
		st.rsrq.Add(float64(k.RSRQdB))
		st.rsrqS.Add(float64(k.RSRQdB))
		if k.Dir == xcal.DL && k.RBs > 0 {
			st.mcs = append(st.mcs, float64(k.MCS))
			st.rank = append(st.rank, float64(k.Rank))
		}
	}
}

func (st *kpiStats) print() {
	if span := st.maxT - st.minT; span > 0 {
		fmt.Printf("  records=%d span=%.1fs DL=%.1f Mbps UL=%.1f Mbps\n",
			st.records, span, st.dlBits/span/1e6, st.ulBits/span/1e6)
	}
	if st.sinr.N > 0 {
		fmt.Printf("  PCell: SINR %s\n         RSRQ %s\n",
			report.StreamSummary(st.sinr, st.sinrS), report.StreamSummary(st.rsrq, st.rsrqS))
	}
	if len(st.mcs) > 1 {
		vm, _ := analysis.Variability(st.mcs, 256)
		vr, _ := analysis.Variability(st.rank, 256)
		fmt.Printf("  V(128ms): MCS %.3f  MIMO %.3f\n", vm, vr)
	}
}

func (st *kpiStats) printRecord(k *xcal.SlotKPI, i int) {
	fmt.Printf("  #%d slot=%d %s/%s cqi=%d mcs=%d(t%d) rank=%d rbs=%d tbs=%d ack=%v sinr=%.1f\n",
		i, k.Slot, k.RAT, k.Dir, k.CQI, k.MCS, k.MCSTable, k.Rank, k.RBs, k.TBSBits, k.ACK, k.SINRdB)
}

func dumpRow(path string, showRecords int) error {
	// Pass 1: configuration extraction from signaling.
	r, f, err := xcal.OpenFile(path)
	if err != nil {
		return err
	}
	ex, err := config.Extract(r)
	f.Close()
	if err != nil {
		return err
	}
	printExtraction(path, ex)

	// Pass 2: KPI statistics.
	r, f, err = xcal.OpenFile(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st := newKPIStats()
	printed := 0
	for {
		ft, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if ft != xcal.FrameKPI {
			continue
		}
		if printed < showRecords {
			printed++
			st.printRecord(&r.KPI, printed)
		}
		st.add(&r.KPI)
	}
	st.print()
	return nil
}

func dumpCol(path string, showRecords int, showBlocks bool) error {
	s, f, err := xcol.OpenFile(path)
	if err != nil {
		return err
	}
	defer f.Close()

	// Configuration extraction reuses the row-format procedure over the
	// re-interleaved stream: convert in memory (signaling traces are
	// small — aux frames plus blocks stream through bounded buffers).
	var rowBuf bytes.Buffer
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if _, err := xcol.ConvertColToRow(f, fi.Size(), &rowBuf); err != nil {
		return err
	}
	rr, err := xcal.NewReader(bytes.NewReader(rowBuf.Bytes()))
	if err != nil {
		return err
	}
	ex, err := config.Extract(rr)
	if err != nil {
		return err
	}
	printExtraction(path, ex)
	rowBuf = bytes.Buffer{}

	if showBlocks {
		if s.Sequential() {
			fmt.Printf("  index: unusable (%v) — sequential fallback\n", s.IndexErr())
		} else {
			fmt.Printf("  index: %d blocks\n", len(s.Index()))
			for i, e := range s.Index() {
				kind := map[uint8]string{1: "meta", 2: "kpi", 3: "aux"}[e.Kind]
				fmt.Printf("  block %3d %-4s off=%-8d len=%-7d count=%-5d first=%-7d firstSlot=%d\n",
					i, kind, e.Offset, e.Len, e.Count, e.First, e.FirstSlot)
			}
		}
	}

	// KPI statistics stream block by block through the scanner.
	st := newKPIStats()
	printed := 0
	var k xcal.SlotKPI
	for {
		blk, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for i := 0; i < blk.Count; i++ {
			blk.Row(i, &k)
			if printed < showRecords {
				printed++
				st.printRecord(&k, printed)
			}
			st.add(&k)
		}
	}
	st.print()
	for _, be := range s.Corrupt() {
		fmt.Printf("  [!] skipped block %d at offset %d: %v\n", be.Index, be.Offset, be.Err)
	}
	return nil
}
