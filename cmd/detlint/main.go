// Command detlint runs the determinism analyzer suite
// (internal/detlint) as a go vet tool:
//
//	go build -o bin/detlint ./cmd/detlint
//	go vet -vettool=$PWD/bin/detlint ./...
//
// It speaks the vet unit-checker protocol directly on go/ast and
// go/types — the repository vendors no third-party modules, so this is
// a minimal stand-in for golang.org/x/tools' unitchecker: the go
// command invokes the tool once per package with a JSON config naming
// the package's files and the export data of its dependencies, and the
// tool type-checks the package, runs the analyzers, and prints
// diagnostics to stderr (exit status 2 when any fire).
//
// The analyzers and the //detlint:allow exception directive are
// documented in internal/detlint and docs/ARCHITECTURE.md.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"github.com/midband5g/midband/internal/detlint"
)

func main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// The go command probes the tool before using it: -V=full must
	// print a "name version ..." line that seeds the build cache key,
	// and -flags must dump the tool's flag set as JSON so go vet can
	// split command-line flags between itself and the tool.
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Printf("%s version devel buildID=%s\n", progname, selfDigest())
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}

	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr,
			"usage: go vet -vettool=%s ./...\n(%s is a vet tool; it expects a single vet config file argument)\n",
			progname, progname)
		os.Exit(1)
	}
	diags, err := checkUnit(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

// selfDigest hashes the tool binary so the go command's cache key
// changes whenever the analyzers do.
func selfDigest() string {
	f, err := os.Open(os.Args[0])
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// goarch is the architecture the unit is being vetted for.
func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}

// vetConfig is the JSON the go command hands a vet tool for one
// package (cmd/go's internal vetConfig struct).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	SucceedOnTypecheckFailure bool
	VetxOnly                  bool
	VetxOutput                string
}

// modulePrefix scopes fact collection: only this module's packages
// export ownership facts, so VetxOnly dependency units outside it
// (the standard library) skip type-checking entirely.
const modulePrefix = "github.com/midband5g/midband"

// inModule reports whether the unit's import path belongs to this
// module, ignoring the " [pkg.test]" variant suffix.
func inModule(importPath string) bool {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}
	return importPath == modulePrefix || strings.HasPrefix(importPath, modulePrefix+"/")
}

// checkUnit analyzes one vet unit and returns rendered diagnostics.
func checkUnit(cfgPath string) ([]string, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// The go command expects a facts file for every unit. Packages in
	// this module export ownership facts (detlint.Facts) consumed by
	// the bufown analyzer; everything else (the standard library) needs
	// no analysis at all — just an empty facts file.
	if cfg.VetxOnly && !inModule(cfg.ImportPath) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeFacts(cfg.VetxOutput, nil)
			}
			return nil, err
		}
		files = append(files, f)
	}

	// Dependencies are imported from the export data the go command
	// already built, resolved through the unit's import map.
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, cfg.Compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", goarch()),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeFacts(cfg.VetxOutput, nil)
		}
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	// Export this unit's facts (test files excluded, matching the
	// analysis scope) for downstream units, whether or not this unit is
	// itself analyzed.
	var factFiles []*ast.File
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			factFiles = append(factFiles, f)
		}
	}
	if err := writeFacts(cfg.VetxOutput, detlint.CollectFacts(fset, factFiles, info)); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	var out []string
	for _, d := range detlint.RunAnalyzersWithFacts(fset, files, pkg, info, detlint.Suite(), readDepFacts(cfg)) {
		out = append(out, fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message))
	}
	return out, nil
}

// writeFacts serializes the unit's facts to its .vetx file. The go
// command requires the file to exist even when there is nothing to
// say; empty facts are written as zero bytes.
func writeFacts(path string, facts *detlint.Facts) error {
	if path == "" {
		return nil
	}
	if facts.Empty() {
		return os.WriteFile(path, []byte{}, 0o666)
	}
	data, err := json.Marshal(facts)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// readDepFacts loads the facts files of the unit's dependencies, keyed
// by import path. Missing, empty, or unparseable files (a stale cache
// from an older tool version) degrade to no facts for that dependency.
func readDepFacts(cfg vetConfig) map[string]*detlint.Facts {
	depFacts := map[string]*detlint.Facts{}
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue
		}
		var facts detlint.Facts
		if err := json.Unmarshal(data, &facts); err != nil {
			continue
		}
		depFacts[path] = &facts
	}
	return depFacts
}
