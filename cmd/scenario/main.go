// Command scenario inspects and validates declarative scenario specs
// (internal/scenario) without running anything.
//
// Usage:
//
//	scenario list                  list the shipped packs with digests
//	scenario show <pack|file>      print a spec's canonical JSON
//	scenario validate <file>...    strictly validate spec files
//
// list shows every compiled-in pack with its app, description and
// canonical digest. show resolves a shipped pack name or a spec file
// and prints the normalized canonical JSON (the bytes the digest
// covers). validate decodes each file with the same strict path the
// campaign uses — unknown fields, bad cross-field combinations and
// malformed fault specs are errors — and exits non-zero on the first
// invalid spec, so it works as a pre-commit or CI gate for spec files.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"github.com/midband5g/midband/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scenario: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		list()
	case "show":
		if len(os.Args) != 3 {
			usage()
		}
		show(os.Args[2])
	case "validate":
		if len(os.Args) < 3 {
			usage()
		}
		validate(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: scenario list | show <pack|file> | validate <file>...\n")
	os.Exit(2)
}

func list() {
	packs, err := scenario.Packs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %-7s %-10s %s\n", "pack", "app", "digest", "description")
	for _, s := range packs {
		digest, err := s.Digest()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-7s %-10s %s\n", s.Name, s.Traffic.App, digest[:10], s.Description)
	}
}

// load resolves a shipped pack name first, then a spec file path.
func load(arg string) (*scenario.Spec, error) {
	if s, err := scenario.Pack(arg); err == nil {
		return s, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a shipped pack nor a readable spec file: %w", arg, err)
	}
	return scenario.Decode(data)
}

func show(arg string) {
	s, err := load(arg)
	if err != nil {
		log.Fatal(err)
	}
	canonical, err := s.Canonical()
	if err != nil {
		log.Fatal(err)
	}
	var pretty json.RawMessage = canonical
	out, err := json.MarshalIndent(pretty, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(append(out, '\n'))
}

func validate(paths []string) {
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		s, err := scenario.Decode(data)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		digest, err := s.Digest()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: ok (%s, app %s, digest %s)\n", path, s.Name, s.Traffic.App, digest[:10])
	}
}
