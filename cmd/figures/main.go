// Command figures regenerates every table and figure of the paper's
// evaluation and prints the rows/series each one plots.
//
// The ~30 artifacts are independent simulation jobs, so they fan out
// over the fleet worker pool: each job renders into its own buffer and
// the buffers are emitted in figure order, making the output
// byte-identical for any -parallel value.
//
// The multi-scale variability figures (12, 13) regenerate through the
// columnar trace pipeline: their sessions capture to in-memory .xcol
// traces and the plotted series are rebuilt from a projected block scan
// (see docs/ARCHITECTURE.md "Trace pipeline"), with a test pinning the
// scanned series equal to the in-memory ones.
//
// Observability: -obs-listen serves live /metrics, /debug/pprof and
// /debug/vars during the run; -progress prints periodic jobs-done + ETA
// snapshots to stderr; with -csv, a RunManifest (manifest.json) is
// written next to the CSVs recording the config digest, seed and
// toolchain of the run. None of it alters the rendered output.
//
// Usage:
//
//	figures [-quick] [-seed N] [-only fig11,fig12,...] [-parallel N]
//	        [-csv DIR] [-obs-listen :9090] [-progress 2s]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/midband5g/midband/internal/experiments"
	"github.com/midband5g/midband/internal/fault"
	"github.com/midband5g/midband/internal/fleet"
	"github.com/midband5g/midband/internal/obs"
	"github.com/midband5g/midband/internal/report"
)

// options carry the CLI flags into run, keeping it testable.
type options struct {
	quick      bool
	seed       int64
	only       string
	csvDir     string
	parallel   int
	obsListen  string
	progress   time.Duration
	cpuProfile string
	memProfile string
	faults     string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var opt options
	flag.BoolVar(&opt.quick, "quick", false, "run shortened sessions")
	flag.Int64Var(&opt.seed, "seed", 2024, "simulation seed")
	flag.StringVar(&opt.only, "only", "", "comma-separated subset, e.g. fig01,fig11,table1")
	flag.StringVar(&opt.csvDir, "csv", "", "also write machine-readable CSV files to this directory")
	flag.IntVar(&opt.parallel, "parallel", 0, "concurrent figure jobs (default: GOMAXPROCS; 1 = serial)")
	flag.StringVar(&opt.obsListen, "obs-listen", "", "serve /metrics, /debug/pprof and /debug/vars on this address during the run (\":0\" picks a port)")
	flag.DurationVar(&opt.progress, "progress", 0, "interval between stderr progress snapshots (0 disables)")
	flag.StringVar(&opt.cpuProfile, "cpuprofile", "", "write a CPU profile of the whole run to this file")
	flag.StringVar(&opt.memProfile, "memprofile", "", "write a heap profile at exit to this file")
	flag.StringVar(&opt.faults, "faults", "", "fault-injection spec for campaign-based figures, e.g. rlf=2e-4,abort=0.05,seed=7 (empty disables)")
	flag.Parse()
	stopProf, err := obs.StartProfiles(opt.cpuProfile, opt.memProfile)
	if err != nil {
		log.Fatal(err)
	}
	err = run(opt, os.Stdout, os.Stderr)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		log.Fatal(err)
	}
}

// manifestConfig is the digested run configuration for the RunManifest:
// exactly the inputs that determine figure output. Worker count is
// excluded (output is byte-identical for any -parallel value).
type manifestConfig struct {
	Only  string `json:"only,omitempty"`
	Quick bool   `json:"quick"`
	Seed  int64  `json:"seed"`
	// Faults is the -faults spec verbatim; omitted when empty so
	// fault-free manifests keep their historical config digest.
	Faults string `json:"faults,omitempty"`
}

// run regenerates the selected figures, streaming progress to stderr and
// the rendered tables — in deterministic figure order — to stdout.
func run(opt options, stdout, stderr io.Writer) error {
	sched, err := fault.ParseSpec(opt.faults)
	if err != nil {
		return err
	}
	o := experiments.Options{Quick: opt.quick, Seed: opt.seed, Workers: opt.parallel, Faults: sched}

	var m fleet.Metrics
	t0 := time.Now() //detlint:allow walltime CLI wall-cost accounting for the manifest, never simulation input
	if opt.obsListen != "" || opt.progress > 0 {
		obs.SetEnabled(true)
	}
	if opt.obsListen != "" {
		reg := obs.Default()
		reg.GaugeFunc("fleet_jobs_done", func() float64 { return float64(m.JobsDone.Load()) })
		reg.GaugeFunc("fleet_jobs_total", func() float64 { return float64(m.JobsTotal.Load()) })
		reg.GaugeFunc("run_elapsed_seconds", func() float64 { return time.Since(t0).Seconds() }) //detlint:allow walltime live /metrics gauge, observability only
		srv, err := obs.Serve(opt.obsListen, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "figures: obs endpoint on http://%s (/metrics /debug/pprof /debug/vars)\n", srv.Addr())
	}
	if opt.progress > 0 {
		stop := obs.StartProgress(obs.ProgressConfig{
			W:        stderr,
			Interval: opt.progress,
			Prefix:   "figures",
			Done:     m.JobsDone.Load,
			Total:    m.JobsTotal.Load,
		})
		defer stop()
	}

	wanted := map[string]bool{}
	for _, k := range strings.Split(opt.only, ",") {
		if k = strings.TrimSpace(strings.ToLower(k)); k != "" {
			wanted[k] = true
		}
	}
	want := func(k string) bool { return len(wanted) == 0 || wanted[k] }
	csvOut := func(write func(string) error) error {
		if opt.csvDir == "" {
			return nil
		}
		return write(opt.csvDir)
	}

	type figJob struct {
		key string
		run func(w io.Writer) error
	}
	var fig1 []experiments.Fig01Row
	var fig9 []experiments.Fig09Row
	var fig11 []experiments.Fig11Row
	jobs := []figJob{
		{"table1", func(w io.Writer) error {
			s, err := experiments.Table1(o)
			if err != nil {
				return err
			}
			report.Table1(w, s)
			return nil
		}},
		{"tables23", func(w io.Writer) error {
			rows, err := experiments.Tables23(o)
			if err != nil {
				return err
			}
			report.Tables23(w, rows)
			return nil
		}},
		{"sec32", func(w io.Writer) error {
			rows, err := experiments.Sec32(o)
			if err != nil {
				return err
			}
			report.Sec32(w, rows)
			return nil
		}},
		{"fig01", func(w io.Writer) error {
			rows, err := experiments.Fig01(o)
			if err != nil {
				return err
			}
			fig1 = rows
			report.Fig01(w, rows)
			return csvOut(func(d string) error { return report.Fig01CSV(d, rows) })
		}},
		{"fig02", func(w io.Writer) error {
			rows, err := experiments.Fig02(o)
			if err != nil {
				return err
			}
			report.Fig02(w, rows)
			return csvOut(func(d string) error { return report.Fig02CSV(d, rows) })
		}},
		{"fig03", func(w io.Writer) error {
			rows, err := experiments.Fig03(o)
			if err != nil {
				return err
			}
			report.Fig03(w, rows)
			return nil
		}},
		{"fig04", func(w io.Writer) error {
			rows, err := experiments.Fig04(o)
			if err != nil {
				return err
			}
			report.Fig04(w, rows)
			return nil
		}},
		{"fig05", func(w io.Writer) error {
			rows, err := experiments.Fig05(o)
			if err != nil {
				return err
			}
			report.Fig05(w, rows)
			return nil
		}},
		{"fig06", func(w io.Writer) error {
			rows, err := experiments.Fig06(o)
			if err != nil {
				return err
			}
			report.Fig06(w, rows)
			return nil
		}},
		{"fig07", func(w io.Writer) error {
			rows, err := experiments.Fig07(o)
			if err != nil {
				return err
			}
			report.Fig07(w, rows)
			return nil
		}},
		{"fig08", func(w io.Writer) error {
			rows, err := experiments.Fig08(o)
			if err != nil {
				return err
			}
			report.Fig08(w, rows)
			return nil
		}},
		{"fig09", func(w io.Writer) error {
			rows, err := experiments.Fig09(o)
			if err != nil {
				return err
			}
			fig9 = rows
			report.Fig09(w, rows)
			return csvOut(func(d string) error { return report.Fig09CSV(d, rows) })
		}},
		{"fig10", func(w io.Writer) error {
			rows, err := experiments.Fig10(o)
			if err != nil {
				return err
			}
			report.Fig10(w, rows)
			return nil
		}},
		{"fig11", func(w io.Writer) error {
			rows, err := experiments.Fig11(o)
			if err != nil {
				return err
			}
			fig11 = rows
			report.Fig11(w, rows)
			return csvOut(func(d string) error { return report.Fig11CSV(d, rows) })
		}},
		{"fig12", func(w io.Writer) error {
			rows, err := experiments.Fig12(o)
			if err != nil {
				return err
			}
			report.Fig12(w, rows)
			return csvOut(func(d string) error { return report.Fig12CSV(d, rows) })
		}},
		{"fig13", func(w io.Writer) error {
			r, err := experiments.Fig13(o)
			if err != nil {
				return err
			}
			report.Fig13(w, r)
			return nil
		}},
		{"fig14", func(w io.Writer) error {
			rows, err := experiments.Fig14(o)
			if err != nil {
				return err
			}
			report.Fig14(w, rows)
			return nil
		}},
		{"fig15", func(w io.Writer) error {
			rows, err := experiments.Fig15(o)
			if err != nil {
				return err
			}
			report.Fig15(w, rows)
			return nil
		}},
		{"fig16", func(w io.Writer) error {
			r, err := experiments.Fig16(o)
			if err != nil {
				return err
			}
			report.Fig16(w, r)
			return nil
		}},
		{"fig17", func(w io.Writer) error {
			rows, err := experiments.Fig17(o)
			if err != nil {
				return err
			}
			report.Fig17(w, rows)
			return csvOut(func(d string) error { return report.Fig17CSV(d, rows) })
		}},
		{"fig18", func(w io.Writer) error {
			rows, err := experiments.Fig18(o)
			if err != nil {
				return err
			}
			report.Fig18(w, rows)
			return csvOut(func(d string) error { return report.Fig18CSV(d, rows) })
		}},
		{"fig19", func(w io.Writer) error {
			rows, err := experiments.Fig19(o)
			if err != nil {
				return err
			}
			report.Fig19(w, rows)
			return nil
		}},
		{"fig23", func(w io.Writer) error {
			rows, err := experiments.Fig23(o)
			if err != nil {
				return err
			}
			report.Fig23(w, rows)
			return nil
		}},
		{"fig24", func(w io.Writer) error {
			rows, err := experiments.Fig24(o)
			if err != nil {
				return err
			}
			report.Fig24(w, rows)
			return nil
		}},
		{"sec7", func(w io.Writer) error {
			rows, err := experiments.Sec7(o)
			if err != nil {
				return err
			}
			report.Sec7(w, rows)
			return csvOut(func(d string) error { return report.Sec7CSV(d, rows) })
		}},
		{"exta", func(w io.Writer) error {
			rows, err := experiments.ExtNSAvsSA(o)
			if err != nil {
				return err
			}
			report.ExtNSAvsSA(w, rows)
			return nil
		}},
		{"extb", func(w io.Writer) error {
			rows, err := experiments.ExtTDDSweep(o)
			if err != nil {
				return err
			}
			report.ExtTDDSweep(w, rows)
			return nil
		}},
		{"extc", func(w io.Writer) error {
			rows, err := experiments.ExtABRComparison(o)
			if err != nil {
				return err
			}
			report.ExtABR(w, rows)
			return nil
		}},
		{"extd", func(w io.Writer) error {
			rows, err := experiments.ExtSchedulers(o)
			if err != nil {
				return err
			}
			report.ExtSchedulers(w, rows)
			return nil
		}},
		{"exte", func(w io.Writer) error {
			rows, err := experiments.ExtTransport(o)
			if err != nil {
				return err
			}
			report.ExtTransport(w, rows)
			return nil
		}},
		{"extf", func(w io.Writer) error {
			rows, err := experiments.ExtHandover(o)
			if err != nil {
				return err
			}
			report.ExtHandover(w, rows)
			return nil
		}},
	}

	var selected []figJob
	for _, j := range jobs {
		if want(j.key) {
			selected = append(selected, j)
		}
	}
	// Every figure renders into its own pooled buffer; the ordered
	// results are streamed afterwards, so -parallel never interleaves
	// the report, and drained buffers recycle through fleet's pool.
	fjobs := make([]fleet.Job[*bytes.Buffer], len(selected))
	for i := range selected {
		j := selected[i]
		fjobs[i] = fleet.Job[*bytes.Buffer]{
			Key: j.key,
			Run: func(context.Context) (*bytes.Buffer, error) {
				buf := fleet.GetBuffer()
				if err := j.run(buf); err != nil {
					fleet.PutBuffer(buf)
					return nil, err
				}
				return buf, nil
			},
		}
	}
	results, err := fleet.Run(context.Background(), fjobs, fleet.Options{
		Workers: opt.parallel,
		Metrics: &m,
		Progress: func(done, total int, key string) {
			fmt.Fprintf(stderr, "figures: [%d/%d] %s (%.1fs)\n", done, total, key, time.Since(t0).Seconds()) //detlint:allow walltime stderr progress line, not part of figure output
		},
	})
	for _, r := range results {
		if r.Err == nil && r.Value != nil {
			_, werr := io.Copy(stdout, r.Value)
			fleet.PutBuffer(r.Value)
			if werr != nil {
				return werr
			}
		}
	}
	if err != nil {
		return err
	}
	if len(wanted) == 0 && fig1 != nil && fig9 != nil && fig11 != nil {
		report.PaperComparison(stdout, fig1, fig9, fig11)
	}
	fmt.Fprintln(stdout)
	if opt.csvDir != "" {
		if err := writeManifest(opt, t0, &m); err != nil {
			return err
		}
	}
	return nil
}

// writeManifest records the run next to its CSV outputs so every figure
// is reproducible from the manifest's config digest and seed.
func writeManifest(opt options, t0 time.Time, m *fleet.Metrics) error {
	man, err := obs.NewManifest("figures", manifestConfig{Only: opt.only, Quick: opt.quick, Seed: opt.seed, Faults: opt.faults})
	if err != nil {
		return err
	}
	man.Seed = opt.seed
	man.Workers = fleet.EffectiveWorkers(opt.parallel)
	man.WallSeconds = time.Since(t0).Seconds() //detlint:allow walltime manifest wall-cost field, excluded from the config digest
	man.JobsDone = m.JobsDone.Load()
	entries, err := os.ReadDir(opt.csvDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			man.Outputs = append(man.Outputs, e.Name())
		}
	}
	return obs.WriteManifest(filepath.Join(opt.csvDir, "manifest.json"), man)
}
