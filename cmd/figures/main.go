// Command figures regenerates every table and figure of the paper's
// evaluation and prints the rows/series each one plots.
//
// Usage:
//
//	figures [-quick] [-seed N] [-only fig11,fig12,...]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/midband5g/midband/internal/experiments"
	"github.com/midband5g/midband/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	quick := flag.Bool("quick", false, "run shortened sessions")
	seed := flag.Int64("seed", 2024, "simulation seed")
	only := flag.String("only", "", "comma-separated subset, e.g. fig01,fig11,table1")
	csvDir := flag.String("csv", "", "also write machine-readable CSV files to this directory")
	flag.Parse()

	o := experiments.Options{Quick: *quick, Seed: *seed}
	w := os.Stdout

	wanted := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(strings.ToLower(k)); k != "" {
			wanted[k] = true
		}
	}
	want := func(k string) bool { return len(wanted) == 0 || wanted[k] }

	type job struct {
		key string
		run func() error
	}
	var fig1 []experiments.Fig01Row
	var fig9 []experiments.Fig09Row
	var fig11 []experiments.Fig11Row
	jobs := []job{
		{"table1", func() error {
			s, err := experiments.Table1(o)
			if err != nil {
				return err
			}
			report.Table1(w, s)
			return nil
		}},
		{"tables23", func() error {
			rows, err := experiments.Tables23(o)
			if err != nil {
				return err
			}
			report.Tables23(w, rows)
			return nil
		}},
		{"sec32", func() error {
			rows, err := experiments.Sec32(o)
			if err != nil {
				return err
			}
			report.Sec32(w, rows)
			return nil
		}},
		{"fig01", func() error {
			rows, err := experiments.Fig01(o)
			if err != nil {
				return err
			}
			fig1 = rows
			report.Fig01(w, rows)
			return csvOut(*csvDir, func(d string) error { return report.Fig01CSV(d, rows) })
		}},
		{"fig02", func() error {
			rows, err := experiments.Fig02(o)
			if err != nil {
				return err
			}
			report.Fig02(w, rows)
			return csvOut(*csvDir, func(d string) error { return report.Fig02CSV(d, rows) })
		}},
		{"fig03", func() error {
			rows, err := experiments.Fig03(o)
			if err != nil {
				return err
			}
			report.Fig03(w, rows)
			return nil
		}},
		{"fig04", func() error {
			rows, err := experiments.Fig04(o)
			if err != nil {
				return err
			}
			report.Fig04(w, rows)
			return nil
		}},
		{"fig05", func() error {
			rows, err := experiments.Fig05(o)
			if err != nil {
				return err
			}
			report.Fig05(w, rows)
			return nil
		}},
		{"fig06", func() error {
			rows, err := experiments.Fig06(o)
			if err != nil {
				return err
			}
			report.Fig06(w, rows)
			return nil
		}},
		{"fig07", func() error {
			rows, err := experiments.Fig07(o)
			if err != nil {
				return err
			}
			report.Fig07(w, rows)
			return nil
		}},
		{"fig08", func() error {
			rows, err := experiments.Fig08(o)
			if err != nil {
				return err
			}
			report.Fig08(w, rows)
			return nil
		}},
		{"fig09", func() error {
			rows, err := experiments.Fig09(o)
			if err != nil {
				return err
			}
			fig9 = rows
			report.Fig09(w, rows)
			return csvOut(*csvDir, func(d string) error { return report.Fig09CSV(d, rows) })
		}},
		{"fig10", func() error {
			rows, err := experiments.Fig10(o)
			if err != nil {
				return err
			}
			report.Fig10(w, rows)
			return nil
		}},
		{"fig11", func() error {
			rows, err := experiments.Fig11(o)
			if err != nil {
				return err
			}
			fig11 = rows
			report.Fig11(w, rows)
			return csvOut(*csvDir, func(d string) error { return report.Fig11CSV(d, rows) })
		}},
		{"fig12", func() error {
			rows, err := experiments.Fig12(o)
			if err != nil {
				return err
			}
			report.Fig12(w, rows)
			return csvOut(*csvDir, func(d string) error { return report.Fig12CSV(d, rows) })
		}},
		{"fig13", func() error {
			r, err := experiments.Fig13(o)
			if err != nil {
				return err
			}
			report.Fig13(w, r)
			return nil
		}},
		{"fig14", func() error {
			rows, err := experiments.Fig14(o)
			if err != nil {
				return err
			}
			report.Fig14(w, rows)
			return nil
		}},
		{"fig15", func() error {
			rows, err := experiments.Fig15(o)
			if err != nil {
				return err
			}
			report.Fig15(w, rows)
			return nil
		}},
		{"fig16", func() error {
			r, err := experiments.Fig16(o)
			if err != nil {
				return err
			}
			report.Fig16(w, r)
			return nil
		}},
		{"fig17", func() error {
			rows, err := experiments.Fig17(o)
			if err != nil {
				return err
			}
			report.Fig17(w, rows)
			return csvOut(*csvDir, func(d string) error { return report.Fig17CSV(d, rows) })
		}},
		{"fig18", func() error {
			rows, err := experiments.Fig18(o)
			if err != nil {
				return err
			}
			report.Fig18(w, rows)
			return csvOut(*csvDir, func(d string) error { return report.Fig18CSV(d, rows) })
		}},
		{"fig19", func() error {
			rows, err := experiments.Fig19(o)
			if err != nil {
				return err
			}
			report.Fig19(w, rows)
			return nil
		}},
		{"fig23", func() error {
			rows, err := experiments.Fig23(o)
			if err != nil {
				return err
			}
			report.Fig23(w, rows)
			return nil
		}},
		{"fig24", func() error {
			rows, err := experiments.Fig24(o)
			if err != nil {
				return err
			}
			report.Fig24(w, rows)
			return nil
		}},
		{"sec7", func() error {
			rows, err := experiments.Sec7(o)
			if err != nil {
				return err
			}
			report.Sec7(w, rows)
			return csvOut(*csvDir, func(d string) error { return report.Sec7CSV(d, rows) })
		}},
		{"exta", func() error {
			rows, err := experiments.ExtNSAvsSA(o)
			if err != nil {
				return err
			}
			report.ExtNSAvsSA(w, rows)
			return nil
		}},
		{"extb", func() error {
			rows, err := experiments.ExtTDDSweep(o)
			if err != nil {
				return err
			}
			report.ExtTDDSweep(w, rows)
			return nil
		}},
		{"extc", func() error {
			rows, err := experiments.ExtABRComparison(o)
			if err != nil {
				return err
			}
			report.ExtABR(w, rows)
			return nil
		}},
		{"extd", func() error {
			rows, err := experiments.ExtSchedulers(o)
			if err != nil {
				return err
			}
			report.ExtSchedulers(w, rows)
			return nil
		}},
		{"exte", func() error {
			rows, err := experiments.ExtTransport(o)
			if err != nil {
				return err
			}
			report.ExtTransport(w, rows)
			return nil
		}},
		{"extf", func() error {
			rows, err := experiments.ExtHandover(o)
			if err != nil {
				return err
			}
			report.ExtHandover(w, rows)
			return nil
		}},
	}
	for _, j := range jobs {
		if !want(j.key) {
			continue
		}
		if err := j.run(); err != nil {
			log.Fatalf("%s: %v", j.key, err)
		}
	}
	if len(wanted) == 0 && fig1 != nil && fig9 != nil && fig11 != nil {
		report.PaperComparison(w, fig1, fig9, fig11)
	}
	fmt.Fprintln(w)
}

// csvOut runs the CSV writer when a -csv directory is configured.
func csvOut(dir string, write func(string) error) error {
	if dir == "" {
		return nil
	}
	return write(dir)
}
