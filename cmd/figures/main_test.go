package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/midband5g/midband/internal/obs"
)

// The figures runner must emit byte-identical stdout and CSV files for
// any -parallel value: jobs render into private buffers that are
// streamed in figure order, and every experiment seeds itself from the
// base seed, never from scheduling.
func TestRunParallelDeterminism(t *testing.T) {
	render := func(parallel int) (string, map[string]string) {
		var out bytes.Buffer
		csvDir := t.TempDir()
		opt := options{
			quick:    true,
			seed:     2024,
			only:     "fig11,extb,extd",
			csvDir:   csvDir,
			parallel: parallel,
		}
		if err := run(opt, &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		files := map[string]string{}
		entries, err := os.ReadDir(csvDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Name() == "manifest.json" {
				// The manifest records wall-clock metadata, so it is
				// compared by config digest below, not byte-for-byte.
				man, err := obs.ReadManifest(filepath.Join(csvDir, e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				files[e.Name()] = man.ConfigDigest
				continue
			}
			b, err := os.ReadFile(filepath.Join(csvDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = string(b)
		}
		return out.String(), files
	}

	serialOut, serialCSV := render(1)
	parallelOut, parallelCSV := render(8)

	if serialOut == "" {
		t.Fatal("no output rendered")
	}
	if serialOut != parallelOut {
		t.Errorf("stdout diverges between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serialOut, parallelOut)
	}
	if len(serialCSV) == 0 {
		t.Fatal("no CSV files written")
	}
	if len(serialCSV) != len(parallelCSV) {
		t.Fatalf("CSV file sets differ: %d vs %d", len(serialCSV), len(parallelCSV))
	}
	for name, body := range serialCSV {
		if parallelCSV[name] != body {
			t.Errorf("CSV %s diverges between -parallel 1 and -parallel 8", name)
		}
	}
}

// -only subsets keep working through the pooled runner.
func TestRunSubsetSelection(t *testing.T) {
	var out bytes.Buffer
	if err := run(options{quick: true, seed: 2024, only: "fig11", parallel: 2}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("fig11 subset produced no output")
	}
}

// TestArtifactsByteIdentical guards the committed artifacts against the
// fault-injection plumbing (and any future strictly-opt-in feature): a
// full-fidelity regeneration with faults disabled must reproduce the
// checked-in CSV byte-for-byte, and the checked-in manifest must still
// verify against its recorded config — the Faults field is omitempty,
// so a disabled schedule cannot move the config digest.
func TestArtifactsByteIdentical(t *testing.T) {
	csvDir := t.TempDir()
	// fig11 is full fidelity even outside -quick, so its committed CSV is
	// exactly reproducible in test time.
	opt := options{seed: 2024, only: "fig11", csvDir: csvDir, parallel: 2}
	if err := run(opt, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	fresh, err := os.ReadFile(filepath.Join(csvDir, "fig11.csv"))
	if err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile(filepath.Join("..", "..", "results", "fig11.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, committed) {
		t.Error("regenerated fig11.csv differs from the committed artifact: a disabled feature perturbed the output")
	}
	// ReadManifest recomputes the config digest from the recorded config
	// and fails on mismatch, so this line alone asserts digest stability.
	if _, err := obs.ReadManifest(filepath.Join("..", "..", "results", "manifest.json")); err != nil {
		t.Errorf("committed manifest no longer verifies: %v", err)
	}
}
