// Command benchgate wraps, unwraps and compares Go benchmark output so a
// committed baseline (BENCH_baseline.json) can gate performance
// regressions in CI without external tooling.
//
// Subcommands:
//
//	benchgate wrap -o out.json [bench.txt]
//	    Read `go test -bench` text (from the file or stdin), attach the
//	    toolchain fingerprint (go version, GOOS, GOARCH) and write a JSON
//	    envelope suitable for committing as a baseline.
//
//	benchgate unwrap file.json
//	    Print the benchmark text stored in a wrapped baseline, e.g. to
//	    feed benchstat.
//
//	benchgate compare [-max-regress 0.10] old new
//	    Parse both inputs (raw bench text or wrapped JSON, detected
//	    automatically), take the best value per benchmark name and metric
//	    (the minimum across -count repeats — robust to scheduler noise),
//	    and exit non-zero if any benchmark present in both regressed.
//	    Benchmarks present on only one side are reported but never fail
//	    the gate, so adding or renaming benchmarks does not break CI.
//
// The gate covers two metric families:
//
//   - Time-like metrics — ns/op and any custom ns/* metric a benchmark
//     reports via b.ReportMetric (ns/record for the columnar scan,
//     ns/UE-slot for the multi-UE population curve) — fail when new is
//     slower than old by more than the allowed fraction.
//   - allocs/op fails on ANY increase. The hot paths pin allocations at
//     zero with testing.AllocsPerRun tests; the gate backstops the
//     benchmarks those tests do not cover, and a 0 → 1 regression is
//     exactly the case a ratio check cannot see.
//
// B/op is parsed but informational: it moves iff allocs/op moves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// envelope is the committed baseline format: the raw benchmark text plus
// the toolchain that produced it, so reviewers can tell when a baseline
// was measured on a different Go version than the one under test.
type envelope struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Bench     string `json:"bench"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "wrap":
		err = wrap(os.Args[2:])
	case "unwrap":
		err = unwrap(os.Args[2:])
	case "compare":
		err = compare(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchgate wrap -o out.json [bench.txt]
  benchgate unwrap file.json
  benchgate compare [-max-regress 0.10] old new`)
}

func wrap(args []string) error {
	fs := flag.NewFlagSet("wrap", flag.ExitOnError)
	out := fs.String("o", "", "output JSON file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var text []byte
	var err error
	if fs.NArg() > 0 {
		text, err = os.ReadFile(fs.Arg(0))
	} else {
		text, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}
	env := envelope{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     string(text),
	}
	buf, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}

func unwrap(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("unwrap: want exactly one file argument")
	}
	env, err := readEnvelope(args[0])
	if err != nil {
		return err
	}
	_, err = io.WriteString(os.Stdout, env.Bench)
	return err
}

func readEnvelope(path string) (envelope, error) {
	var env envelope
	buf, err := os.ReadFile(path)
	if err != nil {
		return env, err
	}
	if err := json.Unmarshal(buf, &env); err != nil {
		return env, fmt.Errorf("%s: %w", path, err)
	}
	return env, nil
}

// benchMetrics maps a metric unit (ns/op, allocs/op, ns/record, …) to its
// best value across repeated runs.
type benchMetrics map[string]float64

// loadBench reads a benchmark corpus from either a wrapped JSON baseline
// or raw `go test -bench` text, keyed by benchmark name, with every
// reported metric at its MINIMUM across repeated runs (-count=N emits one
// line per run). The minimum, not the mean: scheduler noise on a
// contended machine only ever adds time, so the fastest of N runs is the
// best estimate of the code's true cost and is far more stable than the
// average. For allocs/op the runs agree anyway — a steady-state slot loop
// allocates deterministically.
func loadBench(path string) (map[string]benchMetrics, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := string(buf)
	if strings.HasPrefix(strings.TrimSpace(text), "{") {
		var env envelope
		if err := json.Unmarshal(buf, &env); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		text = env.Bench
	}
	best := map[string]benchMetrics{}
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		// Benchmark lines look like:
		//   BenchmarkFoo/case-8  12345  987.6 ns/op  12.3 ns/record  0 B/op  0 allocs/op
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcSuffix(fields[0])
		for i := 2; i+1 < len(fields); i += 2 {
			unit := fields[i+1]
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad %s on line %q: %w", path, unit, line, err)
			}
			m := best[name]
			if m == nil {
				m = benchMetrics{}
				best[name] = m
			}
			if cur, ok := m[unit]; !ok || v < cur {
				m[unit] = v
			}
		}
	}
	return best, nil
}

// gatedUnit reports whether a metric participates in the pass/fail
// decision: all time-like metrics (ns/op and custom ns/* sub-metrics)
// plus allocs/op. B/op and free-form operator counts are informational.
func gatedUnit(unit string) bool {
	return strings.HasPrefix(unit, "ns/") || unit == "allocs/op"
}

// trimProcSuffix drops the trailing -N GOMAXPROCS marker so baselines
// recorded on machines with different core counts still intersect.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func compare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	maxRegress := fs.Float64("max-regress", 0.10, "maximum allowed ns/op slowdown fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compare: want exactly two arguments (old new)")
	}
	old, err := loadBench(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := loadBench(fs.Arg(1))
	if err != nil {
		return err
	}

	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	compared := 0
	fmt.Printf("%-46s %-12s %12s %12s %8s\n", "benchmark", "metric", "old", "new", "delta")
	for _, name := range names {
		nowM, ok := cur[name]
		if !ok {
			fmt.Printf("%-46s %-12s %12.1f %12s %8s\n", name, "ns/op", old[name]["ns/op"], "-", "gone")
			continue
		}
		units := make([]string, 0, len(old[name]))
		for unit := range old[name] {
			if gatedUnit(unit) {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		matched := false
		for _, unit := range units {
			was := old[name][unit]
			now, ok := nowM[unit]
			if !ok {
				fmt.Printf("%-46s %-12s %12.1f %12s %8s\n", name, unit, was, "-", "gone")
				continue
			}
			matched = true
			switch {
			case unit == "allocs/op":
				delta := "ok"
				if now > was {
					delta = "FAIL"
					failures = append(failures, fmt.Sprintf("%s: %g -> %g allocs/op (any increase fails)",
						name, was, now))
				}
				fmt.Printf("%-46s %-12s %12g %12g %8s\n", name, unit, was, now, delta)
			default: // ns/op and custom ns/* sub-metrics
				delta := (now - was) / was
				fmt.Printf("%-46s %-12s %12.1f %12.1f %+7.1f%%\n", name, unit, was, now, 100*delta)
				if delta > *maxRegress {
					failures = append(failures, fmt.Sprintf("%s: %.1f -> %.1f %s (%+.1f%% > %+.1f%% allowed)",
						name, was, now, unit, 100*delta, 100**maxRegress))
				}
			}
		}
		if matched {
			compared++
		}
	}
	var added []string
	for name := range cur {
		if _, ok := old[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("%-46s %-12s %12s %12.1f %8s\n", name, "ns/op", "-", cur[name]["ns/op"], "new")
	}
	if compared == 0 {
		return fmt.Errorf("compare: no benchmarks in common between %s and %s", fs.Arg(0), fs.Arg(1))
	}
	if len(failures) > 0 {
		return fmt.Errorf("performance regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Printf("ok: %d benchmarks gated (time within %.0f%%, allocs not increased)\n", compared, 100**maxRegress)
	return nil
}
