package main

import (
	"os"
	"path/filepath"
	"testing"
)

const oldBench = `goos: linux
goarch: amd64
BenchmarkFoo-8          1000    100.0 ns/op    0 B/op   0 allocs/op
BenchmarkFoo-8          1000    120.0 ns/op    0 B/op   0 allocs/op
BenchmarkBar/case-8     2000     50.0 ns/op
BenchmarkGone-8          500    900.0 ns/op
PASS
`

const newBench = `BenchmarkFoo-16         1000    115.0 ns/op
BenchmarkBar/case-16    2000     80.0 ns/op
BenchmarkAdded-16       1000     10.0 ns/op
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBenchTakesMinAndStripsProcSuffix(t *testing.T) {
	got, err := loadBench(writeTemp(t, "old.txt", oldBench))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkFoo"] != 100.0 {
		t.Errorf("BenchmarkFoo min = %v, want 100", got["BenchmarkFoo"])
	}
	if got["BenchmarkBar/case"] != 50.0 {
		t.Errorf("BenchmarkBar/case = %v, want 50", got["BenchmarkBar/case"])
	}
	if len(got) != 3 {
		t.Errorf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
}

func TestLoadBenchReadsWrappedJSON(t *testing.T) {
	raw := writeTemp(t, "old.txt", oldBench)
	wrapped := filepath.Join(t.TempDir(), "old.json")
	if err := wrap([]string{"-o", wrapped, raw}); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := loadBench(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	fromText, err := loadBench(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromJSON) != len(fromText) || fromJSON["BenchmarkFoo"] != fromText["BenchmarkFoo"] {
		t.Errorf("wrapped parse %v != raw parse %v", fromJSON, fromText)
	}
}

func TestCompareGate(t *testing.T) {
	old := writeTemp(t, "old.txt", oldBench)
	cur := writeTemp(t, "new.txt", newBench)
	// Bar regresses 50 -> 80 ns/op (+60%): must fail at the default 10%.
	if err := compare([]string{old, cur}); err == nil {
		t.Error("60% regression passed the 10% gate")
	}
	// With a generous allowance it passes; Gone/Added are informational.
	if err := compare([]string{"-max-regress", "0.75", old, cur}); err != nil {
		t.Errorf("75%% allowance should pass: %v", err)
	}
	// No overlap at all is an error, not a silent pass.
	empty := writeTemp(t, "none.txt", "BenchmarkOther-8 10 1.0 ns/op\n")
	if err := compare([]string{old, empty}); err == nil {
		t.Error("disjoint benchmark sets should fail")
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":       "BenchmarkFoo",
		"BenchmarkFoo-16":      "BenchmarkFoo",
		"BenchmarkFoo/sub-a-4": "BenchmarkFoo/sub-a",
		"BenchmarkFoo/sub-a":   "BenchmarkFoo/sub-a",
		"BenchmarkFoo":         "BenchmarkFoo",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
