package main

import (
	"os"
	"path/filepath"
	"testing"
)

const oldBench = `goos: linux
goarch: amd64
BenchmarkFoo-8          1000    100.0 ns/op    7.5 ns/record    0 B/op   0 allocs/op
BenchmarkFoo-8          1000    120.0 ns/op    9.0 ns/record    0 B/op   0 allocs/op
BenchmarkBar/case-8     2000     50.0 ns/op
BenchmarkGone-8          500    900.0 ns/op
PASS
`

const newBench = `BenchmarkFoo-16         1000    115.0 ns/op    8.0 ns/record    0 B/op   0 allocs/op
BenchmarkBar/case-16    2000     80.0 ns/op
BenchmarkAdded-16       1000     10.0 ns/op
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBenchTakesMinAndStripsProcSuffix(t *testing.T) {
	got, err := loadBench(writeTemp(t, "old.txt", oldBench))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkFoo"]["ns/op"] != 100.0 {
		t.Errorf("BenchmarkFoo ns/op min = %v, want 100", got["BenchmarkFoo"])
	}
	if got["BenchmarkFoo"]["ns/record"] != 7.5 {
		t.Errorf("BenchmarkFoo ns/record min = %v, want 7.5", got["BenchmarkFoo"])
	}
	if got["BenchmarkFoo"]["allocs/op"] != 0 {
		t.Errorf("BenchmarkFoo allocs/op = %v, want 0", got["BenchmarkFoo"])
	}
	if got["BenchmarkBar/case"]["ns/op"] != 50.0 {
		t.Errorf("BenchmarkBar/case = %v, want 50", got["BenchmarkBar/case"])
	}
	if len(got) != 3 {
		t.Errorf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
}

func TestLoadBenchReadsWrappedJSON(t *testing.T) {
	raw := writeTemp(t, "old.txt", oldBench)
	wrapped := filepath.Join(t.TempDir(), "old.json")
	if err := wrap([]string{"-o", wrapped, raw}); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := loadBench(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	fromText, err := loadBench(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromJSON) != len(fromText) || fromJSON["BenchmarkFoo"]["ns/op"] != fromText["BenchmarkFoo"]["ns/op"] {
		t.Errorf("wrapped parse %v != raw parse %v", fromJSON, fromText)
	}
}

func TestCompareGate(t *testing.T) {
	old := writeTemp(t, "old.txt", oldBench)
	cur := writeTemp(t, "new.txt", newBench)
	// Bar regresses 50 -> 80 ns/op (+60%): must fail at the default 10%.
	if err := compare([]string{old, cur}); err == nil {
		t.Error("60% regression passed the 10% gate")
	}
	// With a generous allowance it passes; Gone/Added are informational.
	if err := compare([]string{"-max-regress", "0.75", old, cur}); err != nil {
		t.Errorf("75%% allowance should pass: %v", err)
	}
	// No overlap at all is an error, not a silent pass.
	empty := writeTemp(t, "none.txt", "BenchmarkOther-8 10 1.0 ns/op\n")
	if err := compare([]string{old, empty}); err == nil {
		t.Error("disjoint benchmark sets should fail")
	}
}

func TestCompareGatesCustomSubMetrics(t *testing.T) {
	old := writeTemp(t, "old.txt", "BenchmarkScan-8 100 1000.0 ns/op 10.0 ns/record\n")
	// ns/op improves but the per-record sub-metric regresses 10 -> 20: the
	// gate must look past the headline number.
	cur := writeTemp(t, "new.txt", "BenchmarkScan-8 100 900.0 ns/op 20.0 ns/record\n")
	if err := compare([]string{old, cur}); err == nil {
		t.Error("100% ns/record regression passed the gate")
	}
	ok := writeTemp(t, "ok.txt", "BenchmarkScan-8 100 990.0 ns/op 10.2 ns/record\n")
	if err := compare([]string{old, ok}); err != nil {
		t.Errorf("2%% ns/record drift should pass: %v", err)
	}
}

func TestCompareFailsAllocRegressionFromZero(t *testing.T) {
	old := writeTemp(t, "old.txt", "BenchmarkStep-8 100 100.0 ns/op 0 B/op 0 allocs/op\n")
	// One allocation appears on a previously allocation-free path: a ratio
	// gate sees 0 -> 1 as infinite but a mean-based one could round it
	// away; the allocs rule fails on any increase.
	cur := writeTemp(t, "new.txt", "BenchmarkStep-8 100 101.0 ns/op 16 B/op 1 allocs/op\n")
	if err := compare([]string{old, cur}); err == nil {
		t.Error("allocs/op 0 -> 1 regression passed the gate")
	}
	// An allocation count going DOWN is fine.
	better := writeTemp(t, "better.txt", "BenchmarkStep-8 100 100.0 ns/op 0 B/op 0 allocs/op\n")
	old2 := writeTemp(t, "old2.txt", "BenchmarkStep-8 100 100.0 ns/op 16 B/op 1 allocs/op\n")
	if err := compare([]string{old2, better}); err != nil {
		t.Errorf("alloc improvement should pass: %v", err)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":       "BenchmarkFoo",
		"BenchmarkFoo-16":      "BenchmarkFoo",
		"BenchmarkFoo/sub-a-4": "BenchmarkFoo/sub-a",
		"BenchmarkFoo/sub-a":   "BenchmarkFoo/sub-a",
		"BenchmarkFoo":         "BenchmarkFoo",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
