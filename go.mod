module github.com/midband5g/midband

go 1.22
