package midband_test

// Documentation gates, run in CI's docs job:
//
//   - every package in this module (root, internal/*, cmd/*, examples/*)
//     must carry a godoc package comment, so `go doc ./...` stays useful;
//   - every relative link in the markdown docs must resolve to a file
//     that exists, so README/DESIGN/EXPERIMENTS/docs/ never drift into
//     dead references.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// goPackageDirs lists every directory in the module that contains
// non-test Go files.
func goPackageDirs(t *testing.T) []string {
	t.Helper()
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "results" || name == "traces") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// Every package must have a godoc package comment on at least one
// file. Library packages must use the canonical `// Package xyz ...`
// form; main packages (cmd/*, examples/*) may open with any prose that
// says what the program does.
func TestEveryPackageHasDocComment(t *testing.T) {
	fset := token.NewFileSet()
	for _, dir := range goPackageDirs(t) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var pkgName string
		documented := false
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s/%s: %v", dir, e.Name(), err)
			}
			pkgName = f.Name.Name
			if f.Doc == nil {
				continue
			}
			text := f.Doc.Text()
			if pkgName == "main" && strings.TrimSpace(text) != "" {
				documented = true
			}
			if strings.HasPrefix(text, "Package ") || strings.HasPrefix(text, "Command ") {
				documented = true
			}
		}
		if pkgName != "" && !documented {
			t.Errorf("package %s (in %s) has no godoc package comment (`// Package %s ...`)", pkgName, dir, pkgName)
		}
	}
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// codeSpan captures inline code spans; codePath matches the repo paths
// (package dirs or files) they may name.
var (
	codeSpan = regexp.MustCompile("`([^`]+)`")
	codePath = regexp.MustCompile(`^(?:internal|cmd|examples)(?:/[A-Za-z0-9_.\-]+)*$`)
)

// The simulation-model and architecture docs map paper concepts to
// packages and files via inline code spans; every such path must exist,
// so the mapping cannot silently rot when code moves.
func TestSimulationModelPathsResolve(t *testing.T) {
	for _, md := range []string{"docs/SIMULATION-MODEL.md", "docs/ARCHITECTURE.md"} {
		b, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range codeSpan.FindAllStringSubmatch(string(b), -1) {
			// A span like `cmd/campaign -ues-per-cell 4` names the path
			// in its first token.
			target := strings.Fields(m[1])
			if len(target) == 0 || !codePath.MatchString(target[0]) {
				continue
			}
			if _, err := os.Stat(target[0]); err != nil {
				t.Errorf("%s: code path %q does not exist", md, target[0])
			}
		}
	}
}

// Every relative markdown link must point at an existing file.
func TestMarkdownLinksResolve(t *testing.T) {
	var mdFiles []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		mdFiles = append(mdFiles, matches...)
	}
	if len(mdFiles) < 5 {
		t.Fatalf("markdown sweep found only %v — glob broken?", mdFiles)
	}
	for _, md := range mdFiles {
		// SNIPPETS.md and PAPERS.md quote external repos and papers
		// verbatim; their links point outside this tree by design.
		if md == "SNIPPETS.md" || md == "PAPERS.md" {
			continue
		}
		b, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(b), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}
