package midband_test

import (
	"testing"
	"time"

	"github.com/midband5g/midband"
)

func TestOperatorsRegistry(t *testing.T) {
	all := midband.Operators()
	mid := midband.MidBandOperators()
	if len(all) != 12 || len(mid) != 11 {
		t.Fatalf("registry sizes: all=%d mid=%d, want 12/11", len(all), len(mid))
	}
	op, err := midband.OperatorByAcronym("O_Sp100")
	if err != nil {
		t.Fatal(err)
	}
	if op.PCell().BandwidthMHz != 100 {
		t.Errorf("O_Sp100 bandwidth = %d", op.PCell().BandwidthMHz)
	}
	if _, err := midband.OperatorByAcronym("nope"); err == nil {
		t.Error("unknown acronym should fail")
	}
}

func TestEndToEndIperf(t *testing.T) {
	op, err := midband.OperatorByAcronym("T_Ge")
	if err != nil {
		t.Fatal(err)
	}
	link, err := midband.NewLink(op, midband.Stationary(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := midband.RunIperf(link, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.DLMbps <= 100 || res.ULMbps <= 0 {
		t.Errorf("throughput implausible: DL=%.0f UL=%.0f", res.DLMbps, res.ULMbps)
	}
	curve := midband.VariabilityCurve(res.ThroughputMbpsSeries(), res.SlotDuration, 8)
	if len(curve) != 9 {
		t.Errorf("curve points = %d", len(curve))
	}
	v, err := midband.Variability(res.ThroughputMbpsSeries(), 100)
	if err != nil || v <= 0 {
		t.Errorf("Variability = %g, %v", v, err)
	}
}

func TestEndToEndVideo(t *testing.T) {
	op, err := midband.OperatorByAcronym("V_It")
	if err != nil {
		t.Fatal(err)
	}
	link, err := midband.NewLink(op, midband.Walking(9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := midband.StreamVideo(link, midband.VideoSession{
		Ladder:        midband.Ladder400,
		ChunkLength:   time.Second,
		VideoDuration: 20 * time.Second,
		ABR:           midband.NewBOLA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 20 {
		t.Errorf("chunks = %d", len(res.Chunks))
	}
	if res.AvgNormBitrate <= 0 {
		t.Error("no bitrate achieved")
	}
	// The other two ABR constructors also stream.
	for _, abr := range []midband.ABR{midband.NewThroughputABR(), midband.NewDynamicABR()} {
		l2, err := midband.NewLink(op, midband.Stationary(10))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := midband.StreamVideo(l2, midband.VideoSession{
			Ladder: midband.Ladder400, ChunkLength: time.Second,
			VideoDuration: 10 * time.Second, ABR: abr,
		}); err != nil {
			t.Fatalf("%s: %v", abr.Name(), err)
		}
	}
}

func TestEndToEndCampaign(t *testing.T) {
	dir := t.TempDir()
	stats, err := midband.RunCampaign(500*time.Millisecond, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Operators != 11 || stats.TraceFiles != 11 {
		t.Errorf("campaign: operators=%d traces=%d", stats.Operators, stats.TraceFiles)
	}
}

func TestSessionAPI(t *testing.T) {
	op, err := midband.OperatorByAcronym("V_Ge")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := midband.NewSession(op, midband.Stationary(4))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Meta().Operator != "V_Ge" {
		t.Error("session meta wrong")
	}
}
