// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per artifact, reporting the headline values as custom
// metrics), plus the ablation benches DESIGN.md calls out and micro-benches
// of the hot paths. Run:
//
//	go test -bench=. -benchmem
package midband_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/midband5g/midband"
	"github.com/midband5g/midband/internal/core"
	"github.com/midband5g/midband/internal/experiments"
	"github.com/midband5g/midband/internal/operators"
)

// quick options keep the benches tractable; cmd/figures (without -quick)
// runs the full-length sessions.
func opts() experiments.Options { return experiments.Options{Quick: true, Seed: 2024} }

func BenchmarkTable1_CampaignStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Table1(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.Operators), "operators")
		b.ReportMetric(s.Minutes, "minutes")
	}
}

func BenchmarkTable2_EUConfigs(b *testing.B) {
	benchTables23(b, "EU")
}

func BenchmarkTable3_USConfigs(b *testing.B) {
	benchTables23(b, "US")
}

func benchTables23(b *testing.B, region string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Tables23(opts())
		if err != nil {
			b.Fatal(err)
		}
		carriers := 0
		for _, r := range rows {
			us := r.Country == "USA"
			if (region == "US") == us {
				carriers += len(r.Carriers)
			}
		}
		b.ReportMetric(float64(carriers), "carriers")
	}
}

func BenchmarkSec32_TheoreticalMax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sec32(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].TheoreticalMax, "theory90_Mbps")
		b.ReportMetric(rows[1].TheoreticalMax, "theory100_Mbps")
		b.ReportMetric(rows[0].GapPct, "gap90_pct")
	}
}

func BenchmarkFig01_DLThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig01(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Operator {
			case "V_It":
				b.ReportMetric(r.DLMbps, "V_It_Mbps")
			case "Vzw_US":
				b.ReportMetric(r.DLMbps, "Vzw_Mbps")
			}
		}
	}
}

func BenchmarkFig02_SpainCQI12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig02(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].DLMbps, "V_Sp_Mbps")
		b.ReportMetric(rows[2].DLMbps, "O_Sp100_Mbps")
	}
}

func BenchmarkFig03_RECDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig03(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(series[2].CDF.Quantile(0.5), "O_Sp100_median_REs")
	}
}

func BenchmarkFig04_MaxRBs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig04(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Alloc.Mean, "O_Sp100_mean_RBs")
	}
}

func BenchmarkFig05_ModulationShares(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig05(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[0].Shares[8], "V_Sp_256QAM_pct")
		b.ReportMetric(100*rows[0].Shares[6], "V_Sp_64QAM_pct")
	}
}

func BenchmarkFig06_MIMOShares(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig06(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[0].Shares[4], "V_Sp_rank4_pct")
		b.ReportMetric(100*rows[2].Shares[4], "O_Sp100_rank4_pct")
	}
}

func BenchmarkFig07_RSRQRoute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig07(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(series[0].MeanRSRQ, "V_Sp_rsrq_dB")
		b.ReportMetric(series[1].MeanRSRQ, "O_Sp_rsrq_dB")
	}
}

func BenchmarkFig08_FactorSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig08(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MeanRank, "V_Sp_mean_rank")
	}
}

func BenchmarkFig09_ULThroughputEU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig09(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Operator == "O_Sp90" {
				b.ReportMetric(r.ULMbps, "O_Sp90_UL_Mbps")
			}
		}
	}
}

func BenchmarkFig10_ULThroughputUS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Channel == "LTE_US" {
				b.ReportMetric(r.GoodULMbps, "LTE_UL_Mbps")
			}
			if r.Channel == "100" {
				b.ReportMetric(r.GoodULMbps, "Tmb_NR_UL_Mbps")
			}
		}
	}
}

func BenchmarkFig11_UserPlaneLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Operator {
			case "V_Ge":
				b.ReportMetric(r.CleanMs, "V_Ge_ms")
			case "V_It":
				b.ReportMetric(r.CleanMs, "V_It_ms")
			}
		}
	}
}

func BenchmarkFig12_Variability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig12(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(series[0].MCSMean, "O_Sp100_VMCS")
		b.ReportMetric(series[3].MCSMean, "V_It_VMCS")
	}
}

func BenchmarkFig13_TimeSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RBVariability, "relV_RBs")
		b.ReportMetric(res.MCSVariability, "relV_MCS")
	}
}

func BenchmarkFig14_MultiUser(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig14(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Location == "A" && c.Sequential {
				b.ReportMetric(c.DLMbps, "A_seq_Mbps")
			}
			if c.Location == "A" && !c.Sequential {
				b.ReportMetric(c.DLMbps, "A_sim_Mbps")
			}
		}
	}
}

func BenchmarkFig15_QoEScatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig15(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].NormBitrate, "V_It_normrate")
	}
}

func BenchmarkFig16_VideoTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgQuality, "avg_quality")
		b.ReportMetric(res.StallPct, "stall_pct")
	}
}

func BenchmarkFig17_ChunkLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig17(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Operator == "V_Ge" && r.ChunkSec == 1 {
				b.ReportMetric(r.NormBitrate, "V_Ge_1s_normrate")
			}
			if r.Operator == "V_Ge" && r.ChunkSec == 4 {
				b.ReportMetric(r.NormBitrate, "V_Ge_4s_normrate")
			}
		}
	}
}

func BenchmarkFig18_MmWaveVariability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig18(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.Tech == "mmwave" && s.Mobility == "walking" {
				b.ReportMetric(s.DLMbps, "mmw_walk_Mbps")
			}
		}
	}
}

func BenchmarkFig19_MmWaveQoE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig19(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Tech == "mmwave" && p.Mobility == "driving" && p.Ladder == "1.25Gbps" {
				b.ReportMetric(p.NormBitrate, "mmw_drive_normrate")
			}
		}
	}
}

func BenchmarkFig23_CABenefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig23(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].DLMbps, "single_Mbps")
		b.ReportMetric(rows[len(rows)-1].DLMbps, "ca160_Mbps")
	}
}

func BenchmarkFig24_ABRComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig24(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.ABR == "bola" && r.Operator == "V_Sp" {
				b.ReportMetric(r.NormBitrate, "bola_normrate")
			}
		}
	}
}

func BenchmarkSec7_MobilityComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sec7(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].StabilityGainPct, "walk_stability_gain_pct")
	}
}

// BenchmarkCampaign_Parallel tracks the fleet speedup: the same
// 7-operator campaign run serially (workers=1) and with one worker per
// CPU. The sessions are independent simulations, so on an N-core
// machine the parallel case should approach N× (≥2× on 4+ cores); the
// aggregates are byte-identical either way.
func BenchmarkCampaign_Parallel(b *testing.B) {
	ops := operators.MidBand()
	if len(ops) > 7 {
		ops = ops[:7]
	}
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats, err := core.RunCampaign(core.CampaignConfig{
					Operators:       ops,
					SessionDuration: 2 * time.Second,
					LatencyProbes:   200,
					Seed:            2024,
					Workers:         workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Operators), "operators")
			}
		})
	}
}

// Micro-benchmark: the end-to-end simulation hot path (one operator link,
// slot stepping with full-buffer load).
func BenchmarkLinkStep(b *testing.B) {
	op, err := midband.OperatorByAcronym("V_Sp")
	if err != nil {
		b.Fatal(err)
	}
	link, err := midband.NewLink(op, midband.Stationary(1))
	if err != nil {
		b.Fatal(err)
	}
	demand := midband.Demand{DL: true, UL: true, Share: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Step(demand)
	}
}

// Micro-benchmark: a full 10-second iperf measurement.
func BenchmarkIperf10s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		op, err := midband.OperatorByAcronym("V_It")
		if err != nil {
			b.Fatal(err)
		}
		link, err := midband.NewLink(op, midband.Stationary(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		res, err := midband.RunIperf(link, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DLMbps, "DL_Mbps")
	}
}

// Ablation benches: the design choices DESIGN.md calls out.

func benchAblation(b *testing.B, run func(experiments.Options) ([]experiments.AblationResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := run(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Value, r.Variant+"_"+r.Unit)
		}
	}
}

func BenchmarkAblation_OLLA(b *testing.B) { benchAblation(b, experiments.AblationOLLA) }
func BenchmarkAblation_HARQ(b *testing.B) { benchAblation(b, experiments.AblationHARQ) }
func BenchmarkAblation_RankAdaptation(b *testing.B) {
	benchAblation(b, experiments.AblationRankAdaptation)
}
func BenchmarkAblation_CQIMapping(b *testing.B) { benchAblation(b, experiments.AblationCQIMapping) }
func BenchmarkAblation_Scheduler(b *testing.B)  { benchAblation(b, experiments.AblationScheduler) }
func BenchmarkAblation_BOLAGamma(b *testing.B)  { benchAblation(b, experiments.AblationBOLAGamma) }

// Extension experiment benches.

func BenchmarkExtension_NSAvsSA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExtNSAvsSA(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.ULMbps, r.Mode+"_UL_Mbps")
		}
	}
}

func BenchmarkExtension_TDDSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExtTDDSweep(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Pattern == "DDSUU" {
				b.ReportMetric(r.ULMbps, "DDSUU_UL_Mbps")
			}
		}
	}
}

func BenchmarkExtension_ABRFive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExtABRComparison(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.ABR == "l2a" {
				b.ReportMetric(r.NormBitrate, "l2a_normrate")
			}
		}
	}
}

func BenchmarkExtension_Schedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExtSchedulers(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Policy == "proportional-fair" {
				b.ReportMetric(r.JainFairness, "pf_fairness")
			}
		}
	}
}

func BenchmarkExtension_Transport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExtTransport(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Operator == "V_Sp" {
				b.ReportMetric(r.EfficiencyPc, "V_Sp_tcp_efficiency_pct")
			}
		}
	}
}

func BenchmarkExtension_Handover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExtHandover(opts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Mobility == "driving" {
				b.ReportMetric(r.InterruptionPct, "driving_handover_cost_pct")
			}
		}
	}
}
