package midband_test

import (
	"fmt"
	"time"

	"github.com/midband5g/midband"
)

// Example lists the European operator configurations of the paper's
// Table 2.
func Example() {
	for _, op := range midband.MidBandOperators() {
		if op.Country == "USA" {
			continue
		}
		pc := op.PCell()
		fmt.Printf("%-8s %s %s\n", op.Acronym, pc.Label(), pc.TDDPattern)
	}
	// Output:
	// V_It     n78/80MHz DDDDDDDSUU
	// V_Sp     n78/90MHz DDDDDDDSUU
	// O_Sp90   n78/90MHz DDDDDDDSUU
	// O_Sp100  n78/100MHz DDDDDDDSUU
	// O_Fr     n78/90MHz DDDSU
	// S_Fr     n78/80MHz DDDSU
	// T_Ge     n78/90MHz DDDSU
	// V_Ge     n78/80MHz DDDSU
}

// ExampleNewLink measures a short downlink session. Results are
// deterministic for a given (operator, scenario, seed).
func ExampleNewLink() {
	op, _ := midband.OperatorByAcronym("V_Sp")
	link, _ := midband.NewLink(op, midband.Stationary(1))
	res, _ := midband.RunIperf(link, time.Second)
	fmt.Printf("slot duration: %v\n", res.SlotDuration)
	fmt.Printf("series length: %d slots\n", len(res.DLBitsPerSlot))
	// Output:
	// slot duration: 500µs
	// series length: 2000 slots
}

// ExampleVariability computes the paper's V(t) metric on a synthetic
// square-wave series: blocks of 2 average out the alternation exactly.
func ExampleVariability() {
	series := []float64{10, 20, 10, 20, 10, 20, 10, 20}
	v1, _ := midband.Variability(series, 1)
	v2, _ := midband.Variability(series, 2)
	fmt.Printf("V(τ)=%.1f V(2τ)=%.1f\n", v1, v2)
	// Output:
	// V(τ)=10.0 V(2τ)=0.0
}
